package ixpd

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"ixplight/internal/ixpgen"
)

// benchServer loads a small synthetic daemon once per benchmark.
func benchServer(b *testing.B) *Server {
	b.Helper()
	s := New(Config{
		Profiles:       ixpgen.BigFour()[:1],
		Seed:           7,
		Scale:          0.005,
		ReloadInterval: -1,
	})
	if err := s.Load(); err != nil {
		b.Fatal(err)
	}
	return s
}

func benchGet(h http.Handler, path, etag string) int {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code
}

// BenchmarkIxpdServe pins the three tiers of the serving pipeline.
// cold forces a fresh compute per request (a unique query parameter
// defeats every reuse layer), warm replays one cached query, and
// etag304 revalidates it. The cold/warm gap is the cache win the
// daemon exists for; TestWarmColdSpeedup pins its floor.
func BenchmarkIxpdServe(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		s := benchServer(b)
		h := s.Handler()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if code := benchGet(h, fmt.Sprintf("/v1/experiments/summary?i=%d", i), ""); code != http.StatusOK {
				b.Fatalf("code %d", code)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		s := benchServer(b)
		h := s.Handler()
		benchGet(h, "/v1/experiments/summary", "") // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if code := benchGet(h, "/v1/experiments/summary", ""); code != http.StatusOK {
				b.Fatalf("code %d", code)
			}
		}
	})
	b.Run("etag304", func(b *testing.B) {
		s := benchServer(b)
		h := s.Handler()
		req := httptest.NewRequest(http.MethodGet, "/v1/experiments/summary", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		etag := rec.Header().Get("ETag")
		if etag == "" {
			b.Fatal("no etag to revalidate")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if code := benchGet(h, "/v1/experiments/summary", etag); code != http.StatusNotModified {
				b.Fatalf("code %d", code)
			}
		}
	})
}

// BenchmarkIxpdBench runs the full cold/warm/etag load generator over
// real sockets against a freshly loaded daemon per iteration, and
// reports each phase's throughput and tail latency as benchmark
// metrics (benchjson archives them into BENCH_*.json).
func BenchmarkIxpdBench(b *testing.B) {
	var last *LoadResult
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := benchServer(b)
		ts := httptest.NewServer(s.Handler())
		b.StartTimer()
		res, err := RunLoad(LoadOptions{
			BaseURL:     ts.URL,
			Concurrency: 8,
			Requests:    400,
			Queries:     32,
			Seed:        42,
		})
		b.StopTimer()
		ts.Close()
		b.StartTimer()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, p := range last.Phases {
		if p.Errors > 0 {
			b.Fatalf("phase %s: %d errors", p.Phase, p.Errors)
		}
		b.ReportMetric(p.QPS, p.Phase+"_qps")
		b.ReportMetric(float64(p.P50), p.Phase+"_p50-ns")
		b.ReportMetric(float64(p.P95), p.Phase+"_p95-ns")
		b.ReportMetric(float64(p.P99), p.Phase+"_p99-ns")
	}
}

// TestWarmColdSpeedup pins the acceptance floor: warm identical-query
// throughput at least 10× the cold first-request path. The real gap is
// orders of magnitude (a cold experiment query runs the experiment and
// builds indexes; a warm one writes cached bytes), so 10× holds with
// huge margin even under the race detector.
func TestWarmColdSpeedup(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res, err := RunLoad(LoadOptions{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Requests:    200,
		Queries:     24,
		Seed:        42,
	})
	if err != nil {
		t.Fatal(err)
	}
	cold, warm, etag := res.Phase("cold"), res.Phase("warm"), res.Phase("etag")
	if cold == nil || warm == nil || etag == nil {
		t.Fatalf("missing phases: %+v", res.Phases)
	}
	for _, p := range res.Phases {
		if p.Errors > 0 {
			t.Fatalf("phase %s: %d errors (statuses %v)", p.Phase, p.Errors, p.Statuses)
		}
	}
	if warm.Statuses[http.StatusOK] != warm.Requests {
		t.Fatalf("warm statuses: %v", warm.Statuses)
	}
	if etag.Statuses[http.StatusNotModified] != etag.Requests {
		t.Fatalf("etag statuses: %v, want all 304", etag.Statuses)
	}
	if warm.QPS < 10*cold.QPS {
		t.Fatalf("warm %.0f qps < 10× cold %.0f qps", warm.QPS, cold.QPS)
	}
}
