package ixpd

import (
	"context"
	"time"

	"ixplight/internal/telemetry"
)

// Hot reload: new collection days land in the snapshot directory as
// files (the collectors write them atomically), so the daemon polls
// the directory signature instead of depending on an fsnotify-style
// watcher — portable, allocation-free between changes, and immune to
// editor/rename event storms. On a signature change the whole dataset
// loads as a fresh generation off the request path; only the final
// pointer swap is shared with serving.

// WatchReload polls the dataset directory until ctx is cancelled,
// reloading on every signature change. It returns immediately when
// the server has no snapshot directory or polling is disabled
// (ReloadInterval < 0).
func (s *Server) WatchReload(ctx context.Context) {
	if s.cfg.SnapshotDir == "" || s.cfg.reloadInterval() < 0 {
		return
	}
	t := time.NewTicker(s.cfg.reloadInterval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if _, err := s.Reload(); err != nil {
				s.cfg.logf("ixpd: reload: %v", err)
			}
		}
	}
}

// Reload compares the dataset directory against the serving
// generation and, when it changed, loads and installs a fresh
// generation. It reports whether a swap happened. Serving is never
// blocked: requests keep answering from the old generation for the
// whole load, and requests already holding the old pointer finish on
// it after the swap.
func (s *Server) Reload() (swapped bool, err error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	cur := s.gen.Load()
	if cur == nil {
		return false, nil // initial Load has not run
	}
	sig, err := dirSignature(s.cfg.SnapshotDir)
	if err != nil {
		s.met.reloads.With("error").Inc()
		return false, err
	}
	if sig == cur.sig {
		return false, nil
	}
	_, sp := telemetry.StartSpan(context.Background(), s.cfg.Telemetry, "ixpd.reload")
	gen, err := s.buildGeneration()
	if err != nil {
		s.met.reloads.With("error").Inc()
		if sp != nil {
			sp.SetAttr("error", err.Error())
			sp.End()
		}
		return false, err
	}
	s.install(gen)
	s.met.reloads.With("ok").Inc()
	if sp != nil {
		sp.SetAttrInt("generation", int64(gen.id))
		sp.End()
	}
	return true, nil
}
