package ixpd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ixplight/internal/collector"
	"ixplight/internal/ixpgen"
)

// writeDeltaSeries writes days [0, upto) of an evolved series into
// dir — day 0 as a full binary snapshot, later days as delta files —
// and returns the encoded delta for day upto (the "next collection
// day" a reload test lands later) with its destination path.
func writeDeltaSeries(t *testing.T, dir string, p ixpgen.Profile, days, upto int) (nextPath string, nextDelta []byte) {
	t.Helper()
	var enc *collector.DeltaEncoder
	err := ixpgen.EvolveSeries(p, ixpgen.TemporalOptions{Days: days, Seed: 11, Scale: 0.005}, 0.05,
		func(day int, snap *collector.Snapshot) error {
			if day == 0 {
				if _, err := collector.SaveSnapshot(dir, snap, collector.CodecBinary); err != nil {
					return err
				}
				var err error
				enc, err = collector.NewDeltaEncoder(snap)
				return err
			}
			buf, err := enc.Encode(snap)
			if err != nil {
				return err
			}
			path := filepath.Join(dir, fmt.Sprintf("%s-%s%s", snap.IXP, snap.Date, collector.DeltaExt))
			if day >= upto {
				nextPath, nextDelta = path, buf
				return nil
			}
			return collector.AtomicWrite(path, func(w io.Writer) error {
				_, werr := w.Write(buf)
				return werr
			})
		})
	if err != nil {
		t.Fatal(err)
	}
	return nextPath, nextDelta
}

// TestHotReload swaps a new delta day into the dataset directory while
// requests are in flight: the poller installs a fresh generation, no
// request is dropped, requests that pinned the old generation still
// complete on it, and new requests see the new day.
func TestHotReload(t *testing.T) {
	dir := t.TempDir()
	p := ixpgen.BigFour()[0]
	day3Path, day3Delta := writeDeltaSeries(t, dir, p, 4, 3)

	s := New(Config{
		Profiles:       []ixpgen.Profile{p},
		SnapshotDir:    dir,
		ReloadInterval: 10 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	seriesDays := func() int {
		var doc SeriesDoc
		code, _, body := doGet(t, h, "/v1/series/"+p.IXP, "")
		if code != http.StatusOK {
			t.Fatalf("/v1/series: code %d: %s", code, body)
		}
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatal(err)
		}
		return len(doc.Days)
	}
	if got := seriesDays(); got != 3 {
		t.Fatalf("initial series has %d days, want 3", got)
	}
	oldGen := s.gen.Load()
	_, oldEtag, _ := doGet(t, h, "/v1/meta", "")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.WatchReload(ctx)

	// Clients hammer the API across the swap; every response must be a
	// 200 (or 304 for revalidations) — a reload never drops a request.
	var (
		stop     atomic.Bool
		dropped  atomic.Int64
		served   atomic.Int64
		clientWG sync.WaitGroup
	)
	paths := []string{"/v1/meta", "/v1/series/" + p.IXP}
	for w := 0; w < 2; w++ {
		clientWG.Add(1)
		go func(w int) {
			defer clientWG.Done()
			for i := 0; !stop.Load(); i++ {
				req := httptest.NewRequest(http.MethodGet, paths[(w+i)%len(paths)], nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				served.Add(1)
				if rec.Code != http.StatusOK {
					dropped.Add(1)
				}
			}
		}(w)
	}

	// Land the next collection day mid-flight, the way a collector
	// would: one atomic write into the polled directory.
	time.Sleep(20 * time.Millisecond)
	if err := collector.AtomicWrite(day3Path, func(w io.Writer) error {
		_, err := w.Write(day3Delta)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for s.gen.Load() == oldGen {
		if time.Now().After(deadline) {
			t.Fatal("reload never installed a new generation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	clientWG.Wait()

	if n := dropped.Load(); n != 0 {
		t.Fatalf("%d of %d responses dropped across the swap", n, served.Load())
	}
	if got := seriesDays(); got != 4 {
		t.Fatalf("post-reload series has %d days, want 4", got)
	}
	newGen := s.gen.Load()
	if newGen.id == oldGen.id || newGen.digest == oldGen.digest {
		t.Fatalf("generation did not advance: %d/%s -> %d/%s", oldGen.id, oldGen.digest, newGen.id, newGen.digest)
	}

	// The new dataset carries new ETags, so stale client caches
	// revalidate to 200 instead of a false 304.
	if code, newEtag, _ := doGet(t, h, "/v1/meta", oldEtag); code != http.StatusOK || newEtag == oldEtag {
		t.Fatalf("stale etag after reload: code %d etag %q (old %q)", code, newEtag, oldEtag)
	}

	// A request that pinned the old generation before the swap still
	// completes against it: the old lab and cache are intact.
	doc, err := s.seriesDoc(oldGen, p.IXP)
	if err != nil {
		t.Fatalf("old-generation compute after swap: %v", err)
	}
	if got := len(doc.(*SeriesDoc).Days); got != 3 {
		t.Fatalf("old generation now serves %d days, want its original 3", got)
	}
	if _, ok := oldGen.cache.get("/v1/meta"); !ok {
		t.Fatal("old generation's response cache was torn down while pinned")
	}

	// An unchanged directory never swaps.
	if swapped, err := s.Reload(); err != nil || swapped {
		t.Fatalf("reload on unchanged dir: swapped=%v err=%v", swapped, err)
	}
}
