// Package ixpd is the long-lived analysis serving layer: a daemon
// that loads a snapshot/delta dataset once, keeps the classified
// indexes warm behind the shared analysis cache, and answers
// experiment, per-AS, per-community and time-series queries over an
// HTTP JSON API.
//
// The hot path is engineered around three layers of reuse:
//
//  1. Strong ETags derived from the dataset digest plus the canonical
//     query, so a client that revalidates with If-None-Match gets a
//     304 without the server recomputing — or even consulting — the
//     response cache.
//  2. A per-generation response cache holding pre-marshaled JSON
//     bodies, so an identical warm query is a map lookup and one
//     Write.
//  3. Singleflight request coalescing, so N concurrent identical cold
//     queries cost one compute (one experiment run, one index build)
//     between them.
//
// Computes run behind bounded worker admission with per-request
// timeouts: at most MaxInFlight experiment/marshal computations run
// at once, and a request that cannot be admitted (or whose coalesced
// flight does not finish) within RequestTimeout is answered 503/504
// instead of piling up.
//
// Datasets hot-reload: a polling watcher (no fsnotify dependency)
// detects new collection days landing in the snapshot directory,
// loads a fresh generation in the background and swaps it in
// atomically. In-flight requests pinned the old generation pointer at
// entry and finish on it; new requests see the new generation (and
// new ETags, so stale client caches revalidate to 200, not 304).
package ixpd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ixplight/internal/ixpgen"
	"ixplight/internal/report"
	"ixplight/internal/telemetry"
)

// Config parameterises a Server.
type Config struct {
	// Profiles are the IXPs under study; their schemes classify the
	// loaded snapshots.
	Profiles []ixpgen.Profile
	// SnapshotDir, when set, is the dataset directory loaded through
	// report.Lab.LoadSnapshotDir (mixed codecs, delta chains walked
	// incrementally) and polled for hot reload. When empty the server
	// generates the calibrated synthetic lab instead (Seed/Scale), and
	// reload is disabled.
	SnapshotDir string
	// Seed and Scale parameterise the synthetic lab (and are recorded
	// in the dataset digest).
	Seed  int64
	Scale float64
	// Parallel bounds the lab's load/experiment worker pools.
	// 0 = GOMAXPROCS.
	Parallel int
	// Materialize / NoIncremental are forwarded to the snapshot
	// loader (see report.Lab).
	Materialize   bool
	NoIncremental bool
	// MaxInFlight bounds concurrent response computations (experiment
	// runs + marshals). 0 = 2×GOMAXPROCS. Cache hits and 304s are not
	// admission-controlled — they cost a map lookup.
	MaxInFlight int
	// RequestTimeout bounds both the admission wait and the time a
	// request waits on a coalesced flight. 0 = 15s.
	RequestTimeout time.Duration
	// ReloadInterval is the dataset directory poll period. 0 = 5s;
	// negative disables polling.
	ReloadInterval time.Duration
	// CacheCap bounds the per-generation response cache (entries).
	// 0 = 512.
	CacheCap int
	// Telemetry, when set, instruments the server (ixplight_ixpd_*
	// families) and roots an ixpd.request span per served request.
	Telemetry *telemetry.Registry
	// Logf, when set, receives operational log lines (reloads,
	// reload errors). Nil silences them.
	Logf func(format string, args ...any)
}

func (c *Config) maxInFlight() int {
	if c.MaxInFlight > 0 {
		return c.MaxInFlight
	}
	return 2 * runtime.GOMAXPROCS(0)
}

func (c *Config) requestTimeout() time.Duration {
	if c.RequestTimeout > 0 {
		return c.RequestTimeout
	}
	return 15 * time.Second
}

func (c *Config) reloadInterval() time.Duration {
	if c.ReloadInterval != 0 {
		return c.ReloadInterval
	}
	return 5 * time.Second
}

func (c *Config) cacheCap() int {
	if c.CacheCap > 0 {
		return c.CacheCap
	}
	return 512
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Server is the warm-index analysis daemon.
type Server struct {
	cfg Config
	met *metrics

	// gen is the current dataset generation. Handlers load it exactly
	// once per request and keep serving from that pointer even if a
	// reload swaps in a newer one mid-request.
	gen    atomic.Pointer[generation]
	genSeq atomic.Uint64
	ready  atomic.Bool

	// reloadMu serialises Load/Reload so two pollers (or a poller and
	// an explicit Reload) never build generations concurrently.
	reloadMu sync.Mutex

	// sem is the bounded compute admission: one slot per in-flight
	// response computation.
	sem chan struct{}

	// flights coalesces concurrent identical cold queries: the first
	// requester becomes the leader and computes; the rest wait on the
	// same flight.
	flightMu sync.Mutex
	flights  map[flightKey]*flight

	// computes counts actual response computations — the test hook
	// behind the coalescing contract.
	computes atomic.Int64

	mux *http.ServeMux
}

// New builds a Server from cfg. The dataset is not loaded yet: call
// Load (readiness flips once it returns), then serve Handler.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		met:     newMetrics(cfg.Telemetry),
		sem:     make(chan struct{}, cfg.maxInFlight()),
		flights: make(map[flightKey]*flight),
	}
	s.mux = s.routes()
	return s
}

// Load builds and installs the initial dataset generation. The server
// answers /readyz with 503 until it returns.
func (s *Server) Load() error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	gen, err := s.buildGeneration()
	if err != nil {
		return err
	}
	s.install(gen)
	s.ready.Store(true)
	return nil
}

// install swaps gen in as the serving generation.
func (s *Server) install(gen *generation) {
	s.gen.Store(gen)
	s.met.generation.Set(int64(gen.id))
	s.cfg.logf("ixpd: generation %d live (digest %s, %d IXPs)", gen.id, gen.digest, len(gen.lab.Profiles))
}

// Generation returns the id and digest of the serving generation
// (0, "" before Load).
func (s *Server) Generation() (uint64, string) {
	gen := s.gen.Load()
	if gen == nil {
		return 0, ""
	}
	return gen.id, gen.digest
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// routes mounts the API. Every /v1 endpoint runs through the cached
// pipeline; the health pair is deliberately outside it (a readiness
// probe must never be answered from a cache or wait on admission).
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/meta", func(w http.ResponseWriter, r *http.Request) {
		s.serveCached(w, r, "meta", func(g *generation) (any, error) {
			return s.metaDoc(g)
		})
	})
	mux.HandleFunc("GET /v1/experiments/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		s.serveCached(w, r, "experiments", func(g *generation) (any, error) {
			return s.experimentDoc(g, name)
		})
	})
	mux.HandleFunc("GET /v1/as/{asn}", func(w http.ResponseWriter, r *http.Request) {
		asn := r.PathValue("asn")
		ixp := r.URL.Query().Get("ixp")
		s.serveCached(w, r, "as", func(g *generation) (any, error) {
			return s.asDoc(g, asn, ixp)
		})
	})
	mux.HandleFunc("GET /v1/community/{community}", func(w http.ResponseWriter, r *http.Request) {
		comm := r.PathValue("community")
		ixp := r.URL.Query().Get("ixp")
		s.serveCached(w, r, "community", func(g *generation) (any, error) {
			return s.communityDoc(g, comm, ixp)
		})
	})
	mux.HandleFunc("GET /v1/series/{ixp}", func(w http.ResponseWriter, r *http.Request) {
		ixp := r.PathValue("ixp")
		s.serveCached(w, r, "series", func(g *generation) (any, error) {
			return s.seriesDoc(g, ixp)
		})
	})
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, []byte(`{"status":"ok"}`+"\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, []byte(`{"status":"loading"}`+"\n"))
		return
	}
	gen := s.gen.Load()
	writeJSON(w, http.StatusOK, fmt.Appendf(nil, "{\"status\":\"ready\",\"generation\":%d}\n", gen.id))
}

// --- cached request pipeline --------------------------------------------

// httpError carries an endpoint-level status code out of a compute.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

// errNotFound builds a 404 compute error.
func errNotFound(format string, args ...any) error {
	return &httpError{code: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

type flightKey struct {
	gen uint64
	key string
}

// flight is one in-flight response computation. data/status are
// written once by the leader before done closes.
type flight struct {
	done   chan struct{}
	status int
	data   []byte
}

// serveCached drives one request through the ETag → cache → coalesced
// compute pipeline. compute receives the pinned generation and
// returns the response document (or an *httpError); it must not
// retain the request, because coalesced computes outlive individual
// requesters.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint string, compute func(*generation) (any, error)) {
	t0 := time.Now()
	s.met.inFlight.Inc()
	defer s.met.inFlight.Dec()
	_, sp := telemetry.StartSpan(r.Context(), s.cfg.Telemetry, "ixpd.request")
	code := s.serve(w, r, compute)
	if sp != nil {
		sp.SetAttr("endpoint", endpoint)
		sp.SetAttr("path", r.URL.Path)
		sp.SetAttrInt("code", int64(code))
		sp.End()
	}
	s.met.request(endpoint, code, time.Since(t0))
}

func (s *Server) serve(w http.ResponseWriter, r *http.Request, compute func(*generation) (any, error)) int {
	gen := s.gen.Load()
	if gen == nil {
		writeJSON(w, http.StatusServiceUnavailable, []byte(`{"error":"dataset not loaded"}`+"\n"))
		return http.StatusServiceUnavailable
	}

	key := cacheKey(r)
	etag := gen.etagFor(key)

	// Layer 1: revalidation. A matching If-None-Match answers with
	// zero recompute — the ETag is derived, not looked up.
	if match := r.Header.Get("If-None-Match"); match != "" && etagMatches(match, etag) {
		s.met.notModified.Inc()
		w.Header().Set("ETag", etag)
		w.WriteHeader(http.StatusNotModified)
		return http.StatusNotModified
	}

	// Layer 2: the pre-marshaled response cache.
	if data, ok := gen.cache.get(key); ok {
		s.met.cacheHits.Inc()
		writeBody(w, http.StatusOK, etag, data)
		return http.StatusOK
	}
	s.met.cacheMisses.Inc()

	// Layer 3: coalesced compute.
	fl, leader := s.joinFlight(gen.id, key)
	if leader {
		// The compute runs detached from this request's context: a
		// requester giving up must not cancel work other requesters
		// (and the cache) will still use.
		go s.runFlight(gen, key, fl, compute)
	} else {
		s.met.coalesced.Inc()
	}

	timeout := time.NewTimer(s.cfg.requestTimeout())
	defer timeout.Stop()
	select {
	case <-fl.done:
	case <-r.Context().Done():
		// The client is gone; nothing useful can be written.
		s.met.waitTimeouts.Inc()
		return http.StatusGatewayTimeout
	case <-timeout.C:
		s.met.waitTimeouts.Inc()
		writeJSON(w, http.StatusGatewayTimeout, []byte(`{"error":"timed out waiting for computation"}`+"\n"))
		return http.StatusGatewayTimeout
	}
	if fl.status == http.StatusOK {
		writeBody(w, http.StatusOK, etag, fl.data)
		return http.StatusOK
	}
	writeJSON(w, fl.status, fl.data)
	return fl.status
}

// joinFlight returns the flight for (gen, key), creating it (leader =
// true) when no identical query is in flight.
func (s *Server) joinFlight(gen uint64, key string) (*flight, bool) {
	k := flightKey{gen: gen, key: key}
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	if fl, ok := s.flights[k]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	s.flights[k] = fl
	return fl, true
}

// runFlight is the leader's side of a coalesced compute: admission,
// compute, marshal, cache fill, broadcast.
func (s *Server) runFlight(gen *generation, key string, fl *flight, compute func(*generation) (any, error)) {
	defer func() {
		s.flightMu.Lock()
		delete(s.flights, flightKey{gen: gen.id, key: key})
		s.flightMu.Unlock()
		close(fl.done)
	}()

	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-time.After(s.cfg.requestTimeout()):
		s.met.rejected.Inc()
		fl.status = http.StatusServiceUnavailable
		fl.data = []byte(`{"error":"compute admission timed out"}` + "\n")
		return
	}

	t0 := time.Now()
	_, sp := telemetry.StartSpan(context.Background(), s.cfg.Telemetry, "ixpd.compute")
	if sp != nil {
		sp.SetAttr("key", key)
	}
	s.computes.Add(1)
	doc, err := compute(gen)
	var data []byte
	if err == nil {
		data, err = marshalJSON(doc)
	}
	if err != nil {
		var he *httpError
		if !errors.As(err, &he) {
			he = &httpError{code: http.StatusInternalServerError, msg: err.Error()}
		}
		fl.status = he.code
		fl.data, _ = marshalJSON(map[string]string{"error": he.msg})
		if sp != nil {
			sp.SetAttr("error", he.msg)
			sp.End()
		}
		s.met.computeSeconds.ObserveSince(t0)
		return
	}
	fl.status = http.StatusOK
	fl.data = data
	gen.cache.put(key, data)
	if sp != nil {
		sp.End()
	}
	s.met.computeSeconds.ObserveSince(t0)
}

// Computes returns the number of response computations the server has
// run — the observable behind the coalescing contract (N concurrent
// identical cold requests bump it exactly once).
func (s *Server) Computes() int64 { return s.computes.Load() }

// --- keys, etags, marshaling --------------------------------------------

// cacheKey canonicalises a request: path plus the sorted query (the
// handlers only consume known parameters, but two orderings of the
// same query must hit the same cache line).
func cacheKey(r *http.Request) string {
	q := r.URL.Query()
	if len(q) == 0 {
		return r.URL.Path
	}
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(r.URL.Path)
	sep := byte('?')
	for _, k := range keys {
		vals := q[k]
		sort.Strings(vals)
		for _, v := range vals {
			b.WriteByte(sep)
			sep = '&'
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(v)
		}
	}
	return b.String()
}

// etagFor derives the strong ETag for one canonical query under this
// generation: dataset digest prefix + query hash. Deriving (rather
// than storing) the tag means If-None-Match revalidation costs no
// cache lookup and works even for responses the cache has evicted.
func (g *generation) etagFor(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf(`"%s-%016x"`, g.digest, h.Sum64())
}

// etagMatches implements If-None-Match: a comma-separated list of
// entity tags, or the wildcard.
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || part == etag {
			return true
		}
		// A W/ prefix still weakly matches the strong tag.
		if strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

// bufPool recycles marshal scratch buffers across responses: the
// encoder grows into pooled capacity and the final copy is sized
// exactly, so steady-state marshaling does not regrow buffers per
// request.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func marshalJSON(v any) ([]byte, error) {
	b := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(b)
	b.Reset()
	enc := json.NewEncoder(b)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return bytes.Clone(b.Bytes()), nil
}

func writeJSON(w http.ResponseWriter, code int, data []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	w.Write(data)
}

func writeBody(w http.ResponseWriter, code int, etag string, data []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("ETag", etag)
	w.WriteHeader(code)
	w.Write(data)
}

// labFor is a test/bench seam: the current generation's lab.
func (s *Server) labFor() *report.Lab {
	if gen := s.gen.Load(); gen != nil {
		return gen.lab
	}
	return nil
}
