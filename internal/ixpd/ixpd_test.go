package ixpd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ixplight/internal/analysis"
	"ixplight/internal/ixpgen"
	"ixplight/internal/telemetry"
)

// testServer builds and loads a small synthetic server.
func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Profiles == nil {
		cfg.Profiles = ixpgen.BigFour()[:1]
	}
	if cfg.Scale == 0 {
		cfg.Scale = 0.005
	}
	if cfg.Seed == 0 {
		cfg.Seed = 7
	}
	cfg.ReloadInterval = -1
	s := New(cfg)
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	return s
}

// doGet drives one request through the handler and returns the
// response.
func doGet(t *testing.T, h http.Handler, path, ifNoneMatch string) (code int, etag, body string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Header().Get("ETag"), rec.Body.String()
}

func TestEndpoints(t *testing.T) {
	s := testServer(t, Config{Profiles: ixpgen.BigFour()[:2]})
	h := s.Handler()

	var meta MetaDoc
	code, etag, body := doGet(t, h, "/v1/meta", "")
	if code != http.StatusOK || etag == "" {
		t.Fatalf("/v1/meta: code %d etag %q", code, etag)
	}
	if err := json.Unmarshal([]byte(body), &meta); err != nil {
		t.Fatal(err)
	}
	if len(meta.IXPs) != 2 || meta.Digest == "" || len(meta.Experiments) == 0 {
		t.Fatalf("meta: %+v", meta)
	}
	ixp := meta.IXPs[0]
	if len(ixp.SampleASNs) == 0 || len(ixp.SampleCommunities) == 0 {
		t.Fatalf("meta has no query samples: %+v", ixp)
	}
	if meta.Source != "synthetic" {
		t.Fatalf("source = %q, want synthetic", meta.Source)
	}

	code, _, body = doGet(t, h, "/v1/experiments/summary", "")
	if code != http.StatusOK || !strings.Contains(body, `"output"`) {
		t.Fatalf("experiment: code %d body %.80s", code, body)
	}
	if code, _, _ := doGet(t, h, "/v1/experiments/nonsense", ""); code != http.StatusNotFound {
		t.Fatalf("unknown experiment: code %d, want 404", code)
	}

	var asDoc ASDoc
	code, _, body = doGet(t, h, fmt.Sprintf("/v1/as/%d", ixp.SampleASNs[0]), "")
	if code != http.StatusOK {
		t.Fatalf("/v1/as: code %d", code)
	}
	if err := json.Unmarshal([]byte(body), &asDoc); err != nil {
		t.Fatal(err)
	}
	if len(asDoc.IXPs) != 2 || !asDoc.IXPs[0].Member || asDoc.IXPs[0].V4.Routes == 0 {
		t.Fatalf("as doc: %+v", asDoc)
	}
	code, _, body = doGet(t, h, fmt.Sprintf("/v1/as/%d?ixp=%s", ixp.SampleASNs[0], ixp.IXP), "")
	if code != http.StatusOK {
		t.Fatalf("/v1/as?ixp: code %d", code)
	}
	if err := json.Unmarshal([]byte(body), &asDoc); err != nil {
		t.Fatal(err)
	}
	if len(asDoc.IXPs) != 1 || asDoc.IXPs[0].IXP != ixp.IXP {
		t.Fatalf("filtered as doc: %+v", asDoc)
	}
	for _, bad := range []string{"/v1/as/notanumber", "/v1/as/1?ixp=BOGUS"} {
		if code, _, _ := doGet(t, h, bad, ""); code != http.StatusNotFound {
			t.Fatalf("%s: code %d, want 404", bad, code)
		}
	}

	var commDoc CommunityDoc
	code, _, body = doGet(t, h, "/v1/community/"+ixp.SampleCommunities[0], "")
	if code != http.StatusOK {
		t.Fatalf("/v1/community: code %d", code)
	}
	if err := json.Unmarshal([]byte(body), &commDoc); err != nil {
		t.Fatal(err)
	}
	if len(commDoc.IXPs) != 2 || !commDoc.IXPs[0].Known || commDoc.IXPs[0].V4.ActionInstances == 0 {
		t.Fatalf("community doc: %+v", commDoc)
	}
	if code, _, _ := doGet(t, h, "/v1/community/junk", ""); code != http.StatusNotFound {
		t.Fatalf("bad community: code %d, want 404", code)
	}

	var series SeriesDoc
	code, _, body = doGet(t, h, "/v1/series/"+ixp.IXP, "")
	if code != http.StatusOK {
		t.Fatalf("/v1/series: code %d", code)
	}
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatal(err)
	}
	if len(series.Days) == 0 || series.Days[0].V4.Routes == 0 {
		t.Fatalf("series doc: %+v", series)
	}
	if code, _, _ := doGet(t, h, "/v1/series/BOGUS", ""); code != http.StatusNotFound {
		t.Fatalf("unknown series ixp: code %d, want 404", code)
	}
}

func TestETagRevalidation(t *testing.T) {
	s := testServer(t, Config{})
	h := s.Handler()

	code, etag, body := doGet(t, h, "/v1/experiments/summary", "")
	if code != http.StatusOK || etag == "" || body == "" {
		t.Fatalf("cold: code %d etag %q", code, etag)
	}
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("etag %q is not a quoted entity tag", etag)
	}

	// Revalidation answers 304 with no body — and, per the derived-tag
	// design, without touching compute.
	pre := s.Computes()
	code, etag2, body := doGet(t, h, "/v1/experiments/summary", etag)
	if code != http.StatusNotModified || body != "" {
		t.Fatalf("revalidation: code %d body %q", code, body)
	}
	if etag2 != etag {
		t.Fatalf("304 etag %q != original %q", etag2, etag)
	}
	if got := s.Computes(); got != pre {
		t.Fatalf("304 triggered a compute (%d -> %d)", pre, got)
	}

	// Different queries get different tags under the same dataset.
	_, other, _ := doGet(t, h, "/v1/meta", "")
	if other == etag {
		t.Fatalf("distinct queries share etag %q", etag)
	}

	// A stale tag (different dataset digest) recomputes.
	code, _, _ = doGet(t, h, "/v1/experiments/summary", `"deadbeef-0000000000000000"`)
	if code != http.StatusOK {
		t.Fatalf("stale etag: code %d, want 200", code)
	}
}

func TestEtagMatches(t *testing.T) {
	const tag = `"abc-123"`
	for _, tc := range []struct {
		header string
		want   bool
	}{
		{tag, true},
		{`W/` + tag, true},
		{`"other", ` + tag, true},
		{"*", true},
		{`"other"`, false},
		{"", false},
	} {
		if got := etagMatches(tc.header, tag); got != tc.want {
			t.Errorf("etagMatches(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

func TestCacheKeyCanonical(t *testing.T) {
	a := httptest.NewRequest(http.MethodGet, "/v1/as/1?ixp=DE-CIX&fam=v6", nil)
	b := httptest.NewRequest(http.MethodGet, "/v1/as/1?fam=v6&ixp=DE-CIX", nil)
	if cacheKey(a) != cacheKey(b) {
		t.Fatalf("query order changes cache key: %q vs %q", cacheKey(a), cacheKey(b))
	}
	c := httptest.NewRequest(http.MethodGet, "/v1/as/1?ixp=AMS-IX", nil)
	if cacheKey(a) == cacheKey(c) {
		t.Fatalf("distinct queries share cache key %q", cacheKey(a))
	}
}

func TestReadinessGating(t *testing.T) {
	s := New(Config{Profiles: ixpgen.BigFour()[:1], Scale: 0.005, ReloadInterval: -1})
	h := s.Handler()
	if code, _, _ := doGet(t, h, "/healthz", ""); code != http.StatusOK {
		t.Fatalf("healthz before load: %d", code)
	}
	if code, _, body := doGet(t, h, "/readyz", ""); code != http.StatusServiceUnavailable || !strings.Contains(body, "loading") {
		t.Fatalf("readyz before load: %d %q", code, body)
	}
	if code, _, _ := doGet(t, h, "/v1/meta", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("API before load: %d, want 503", code)
	}
	if err := s.Load(); err != nil {
		t.Fatal(err)
	}
	if code, _, body := doGet(t, h, "/readyz", ""); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz after load: %d %q", code, body)
	}
}

// TestCoalescing is the acceptance contract: N concurrent identical
// cold requests trigger exactly one response computation and exactly
// one classified-index build between them.
func TestCoalescing(t *testing.T) {
	reg := telemetry.New()
	analysis.SetTelemetry(reg)
	defer analysis.SetTelemetry(nil)

	s := testServer(t, Config{Telemetry: reg})
	h := s.Handler()

	const n = 16
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		mu    sync.Mutex
	)
	codes := make(map[int]int)
	bodies := make(map[string]int)
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer done.Done()
			start.Wait()
			code, _, body := doGet(t, h, "/v1/as/64500?ixp="+s.cfg.Profiles[0].IXP, "")
			mu.Lock()
			codes[code]++
			bodies[body]++
			mu.Unlock()
		}()
	}
	start.Done()
	done.Wait()

	if codes[http.StatusOK] != n {
		t.Fatalf("statuses: %v, want %d× 200", codes, n)
	}
	if len(bodies) != 1 {
		t.Fatalf("%d distinct bodies for identical requests", len(bodies))
	}
	if got := s.Computes(); got != 1 {
		t.Fatalf("%d computes for %d identical concurrent requests, want 1", got, n)
	}
	var builds, followers int64
	for name, v := range reg.Snapshot() {
		n, ok := v.(int64)
		if !ok {
			continue
		}
		switch {
		case strings.HasPrefix(name, "ixplight_analysis_index_builds_total"):
			builds += n
		case name == "ixplight_ixpd_coalesced_total" || name == "ixplight_ixpd_cache_hits_total":
			followers += n
		}
	}
	if builds != 1 {
		t.Fatalf("%d index builds, want 1", builds)
	}
	if followers != n-1 {
		t.Fatalf("coalesced+cache-hit = %d, want %d", followers, n-1)
	}
}

// TestAdmissionTimeout: with every admission slot taken, a compute
// flight resolves 503 without ever running its computation.
func TestAdmissionTimeout(t *testing.T) {
	s := testServer(t, Config{MaxInFlight: 1, RequestTimeout: 30 * time.Millisecond})
	s.sem <- struct{}{} // occupy the only slot
	defer func() { <-s.sem }()

	fl := &flight{done: make(chan struct{})}
	s.runFlight(s.gen.Load(), "/test", fl, func(*generation) (any, error) {
		t.Error("compute ran despite admission timeout")
		return nil, nil
	})
	<-fl.done
	if fl.status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", fl.status)
	}
	if s.Computes() != 0 {
		t.Fatalf("compute counted despite rejection")
	}
}

// TestWaiterTimeout: a request whose coalesced flight outlives the
// request timeout is answered 504; the detached compute still finishes
// and fills the cache for the next requester.
func TestWaiterTimeout(t *testing.T) {
	s := testServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	release := make(chan struct{})
	req := httptest.NewRequest(http.MethodGet, "/slow", nil)
	rec := httptest.NewRecorder()
	s.serveCached(rec, req, "test", func(*generation) (any, error) {
		<-release
		return map[string]string{"ok": "true"}, nil
	})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("code %d, want 504", rec.Code)
	}
	close(release)

	// The flight completes detached and lands in the cache.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := s.gen.Load().cache.get("/slow"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detached compute never filled the cache")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRespCacheBound(t *testing.T) {
	c := newRespCache(3)
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("k%d", i), []byte{byte(i)})
	}
	if c.len() != 3 {
		t.Fatalf("len %d, want 3", c.len())
	}
	if _, ok := c.get("k0"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := c.get("k4"); !ok {
		t.Fatal("newest entry missing")
	}
}
