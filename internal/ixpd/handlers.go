package ixpd

import (
	"bytes"
	"slices"
	"strconv"
	"time"

	"ixplight/internal/analysis"
	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/ixpgen"
	"ixplight/internal/report"
)

// The response documents. Every endpoint returns one of these,
// marshaled once and cached pre-encoded; shapes are additive-stable
// so clients can pin fields.

// MetaDoc describes the serving dataset.
type MetaDoc struct {
	Digest      string    `json:"digest"`
	Generation  uint64    `json:"generation"`
	LoadedAt    time.Time `json:"loaded_at"`
	Source      string    `json:"source"` // "dir" or "synthetic"
	Experiments []string  `json:"experiments"`
	IXPs        []MetaIXP `json:"ixps"`
}

// MetaIXP is one IXP's slice of the dataset, including small query
// samples so load generators and curl users can form valid per-AS and
// per-community lookups without guessing.
type MetaIXP struct {
	IXP               string   `json:"ixp"`
	Days              int      `json:"days"`
	Latest            string   `json:"latest"`
	MembersV4         int      `json:"members_v4"`
	MembersV6         int      `json:"members_v6"`
	RoutesV4          int      `json:"routes_v4"`
	RoutesV6          int      `json:"routes_v6"`
	SampleASNs        []uint32 `json:"sample_asns"`
	SampleCommunities []string `json:"sample_communities"`
}

// ExperimentDoc is one experiment's paper-shaped output.
type ExperimentDoc struct {
	Experiment string `json:"experiment"`
	Digest     string `json:"digest"`
	Output     string `json:"output"`
}

// ASDoc is the per-AS lookup across the dataset's IXPs.
type ASDoc struct {
	ASN  uint32    `json:"asn"`
	IXPs []ASAtIXP `json:"ixps"`
}

// ASAtIXP is one IXP's view of an AS, from the latest snapshot.
type ASAtIXP struct {
	IXP    string              `json:"ixp"`
	Member bool                `json:"member"`
	V4     analysis.ASActivity `json:"v4"`
	V6     analysis.ASActivity `json:"v6"`
}

// CommunityDoc is the per-community lookup across IXPs.
type CommunityDoc struct {
	Community string           `json:"community"`
	IXPs      []CommunityAtIXP `json:"ixps"`
}

// CommunityAtIXP is one IXP's classification and usage of a standard
// community value.
type CommunityAtIXP struct {
	IXP    string                  `json:"ixp"`
	Known  bool                    `json:"known"`
	Action string                  `json:"action,omitempty"`
	Target string                  `json:"target,omitempty"`
	V4     analysis.CommunityUsage `json:"v4"`
	V6     analysis.CommunityUsage `json:"v6"`
}

// SeriesDoc is one IXP's per-day time series.
type SeriesDoc struct {
	IXP  string      `json:"ixp"`
	Days []SeriesDay `json:"days"`
}

// SeriesDay is one collection day's Appendix-A-style counts.
type SeriesDay struct {
	Date string       `json:"date"`
	V4   FamilyCounts `json:"v4"`
	V6   FamilyCounts `json:"v6"`
}

// FamilyCounts is one address family's Appendix A row.
type FamilyCounts struct {
	Members     int `json:"members"`
	Prefixes    int `json:"prefixes"`
	Routes      int `json:"routes"`
	Communities int `json:"communities"`
}

func familyCounts(c analysis.SnapshotCounts) FamilyCounts {
	return FamilyCounts{Members: c.Members, Prefixes: c.Prefixes, Routes: c.Routes, Communities: c.Communities}
}

// --- computes -----------------------------------------------------------

const sampleCap = 8

func (s *Server) metaDoc(g *generation) (any, error) {
	doc := &MetaDoc{
		Digest:      g.digest,
		Generation:  g.id,
		LoadedAt:    g.loadedAt.UTC().Truncate(time.Second),
		Source:      "synthetic",
		Experiments: report.ExperimentNames,
	}
	if s.cfg.SnapshotDir != "" {
		doc.Source = "dir"
	}
	for _, p := range g.lab.Profiles {
		snap := g.lab.Snapshots[p.IXP]
		if snap == nil {
			continue
		}
		mi := MetaIXP{
			IXP:       p.IXP,
			Days:      max(1, len(g.lab.Series[p.IXP])),
			Latest:    snap.Date,
			MembersV4: snap.MembersV4(),
			MembersV6: snap.MembersV6(),
			RoutesV4:  analysis.CountSnapshot(snap, false).Routes,
			RoutesV6:  analysis.CountSnapshot(snap, true).Routes,
		}
		for _, m := range snap.Members {
			if len(mi.SampleASNs) == sampleCap {
				break
			}
			mi.SampleASNs = append(mi.SampleASNs, m.ASN)
		}
		for _, cc := range analysis.TopActionCommunities(snap, p.Scheme, false, sampleCap) {
			mi.SampleCommunities = append(mi.SampleCommunities, cc.Community.String())
		}
		doc.IXPs = append(doc.IXPs, mi)
	}
	return doc, nil
}

func (s *Server) experimentDoc(g *generation, name string) (any, error) {
	if !slices.Contains(report.ExperimentNames, name) {
		return nil, errNotFound("unknown experiment %q", name)
	}
	var buf bytes.Buffer
	if err := g.lab.Run(&buf, name); err != nil {
		return nil, err
	}
	return &ExperimentDoc{Experiment: name, Digest: g.digest, Output: buf.String()}, nil
}

func (s *Server) asDoc(g *generation, asnStr, ixpFilter string) (any, error) {
	asn64, err := strconv.ParseUint(asnStr, 10, 32)
	if err != nil {
		return nil, errNotFound("bad ASN %q", asnStr)
	}
	asn := uint32(asn64)
	doc := &ASDoc{ASN: asn}
	for _, p := range g.lab.Profiles {
		if ixpFilter != "" && p.IXP != ixpFilter {
			continue
		}
		snap := g.lab.Snapshots[p.IXP]
		if snap == nil {
			continue
		}
		ix := analysis.IndexFor(snap, p.Scheme)
		doc.IXPs = append(doc.IXPs, ASAtIXP{
			IXP:    p.IXP,
			Member: snap.MemberSet()[asn],
			V4:     ix.ASActivity(asn, false),
			V6:     ix.ASActivity(asn, true),
		})
	}
	if ixpFilter != "" && len(doc.IXPs) == 0 {
		return nil, errNotFound("unknown IXP %q", ixpFilter)
	}
	return doc, nil
}

func (s *Server) communityDoc(g *generation, commStr, ixpFilter string) (any, error) {
	comm, err := bgp.ParseCommunity(commStr)
	if err != nil {
		return nil, errNotFound("bad community %q", commStr)
	}
	doc := &CommunityDoc{Community: comm.String()}
	for _, p := range g.lab.Profiles {
		if ixpFilter != "" && p.IXP != ixpFilter {
			continue
		}
		snap := g.lab.Snapshots[p.IXP]
		if snap == nil {
			continue
		}
		ix := analysis.IndexFor(snap, p.Scheme)
		u4 := ix.CommunityUsage(comm, false)
		u6 := ix.CommunityUsage(comm, true)
		at := CommunityAtIXP{IXP: p.IXP, Known: u4.Class.Known, V4: u4, V6: u6}
		if at.Known {
			at.Action = u4.Class.Action.String()
			switch u4.Class.Target {
			case dictionary.TargetAll:
				at.Target = "all"
			case dictionary.TargetPeer:
				at.Target = "AS" + strconv.FormatUint(uint64(u4.Class.TargetASN), 10)
			}
		}
		doc.IXPs = append(doc.IXPs, at)
	}
	if ixpFilter != "" && len(doc.IXPs) == 0 {
		return nil, errNotFound("unknown IXP %q", ixpFilter)
	}
	return doc, nil
}

func (s *Server) seriesDoc(g *generation, ixp string) (any, error) {
	p := profileFor(g.lab, ixp)
	if p == nil {
		return nil, errNotFound("unknown IXP %q", ixp)
	}
	series := g.lab.Series[p.IXP]
	if len(series) == 0 {
		if snap := g.lab.Snapshots[p.IXP]; snap != nil {
			series = []*collector.Snapshot{snap}
		}
	}
	doc := &SeriesDoc{IXP: p.IXP, Days: make([]SeriesDay, 0, len(series))}
	for _, snap := range series {
		doc.Days = append(doc.Days, SeriesDay{
			Date: snap.Date,
			V4:   familyCounts(analysis.CountSnapshot(snap, false)),
			V6:   familyCounts(analysis.CountSnapshot(snap, true)),
		})
	}
	return doc, nil
}

func profileFor(lab *report.Lab, ixp string) *ixpgen.Profile {
	for i := range lab.Profiles {
		if lab.Profiles[i].IXP == ixp {
			return &lab.Profiles[i]
		}
	}
	return nil
}
