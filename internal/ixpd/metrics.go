package ixpd

import (
	"strconv"
	"time"

	"ixplight/internal/telemetry"
)

// metrics is the daemon's instrument set. Every field is nil-safe
// (the telemetry package's no-op contract), so a Server without a
// registry pays one nil check per operation.
type metrics struct {
	requests       *telemetry.CounterVec // endpoint, code
	seconds        *telemetry.HistogramVec
	inFlight       *telemetry.Gauge
	notModified    *telemetry.Counter
	cacheHits      *telemetry.Counter
	cacheMisses    *telemetry.Counter
	coalesced      *telemetry.Counter
	computeSeconds *telemetry.Histogram
	rejected       *telemetry.Counter
	waitTimeouts   *telemetry.Counter
	reloads        *telemetry.CounterVec // result
	generation     *telemetry.Gauge
}

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		requests: reg.CounterVec("ixplight_ixpd_requests_total",
			"API requests served, by endpoint and status code.", "endpoint", "code"),
		seconds: reg.HistogramVec("ixplight_ixpd_request_seconds",
			"API request handling time by endpoint, including cache hits and 304s.", nil, "endpoint"),
		inFlight: reg.Gauge("ixplight_ixpd_in_flight",
			"API requests currently being handled."),
		notModified: reg.Counter("ixplight_ixpd_not_modified_total",
			"Requests answered 304 from If-None-Match revalidation (zero recompute)."),
		cacheHits: reg.Counter("ixplight_ixpd_cache_hits_total",
			"Requests answered from the pre-marshaled response cache."),
		cacheMisses: reg.Counter("ixplight_ixpd_cache_misses_total",
			"Requests that missed the response cache and entered a compute flight."),
		coalesced: reg.Counter("ixplight_ixpd_coalesced_total",
			"Requests that joined another request's in-flight identical computation."),
		computeSeconds: reg.Histogram("ixplight_ixpd_compute_seconds",
			"Response computation time (experiment run + JSON marshal), cache misses only.", nil),
		rejected: reg.Counter("ixplight_ixpd_admission_rejected_total",
			"Computations rejected because no admission slot freed within the request timeout."),
		waitTimeouts: reg.Counter("ixplight_ixpd_wait_timeouts_total",
			"Requests that timed out (or disconnected) waiting on a coalesced computation."),
		reloads: reg.CounterVec("ixplight_ixpd_reloads_total",
			"Dataset hot-reload attempts that found a changed directory, by result.", "result"),
		generation: reg.Gauge("ixplight_ixpd_generation",
			"Sequence number of the dataset generation currently serving."),
	}
}

// request records one served request.
func (m *metrics) request(endpoint string, code int, d time.Duration) {
	m.requests.With(endpoint, strconv.Itoa(code)).Inc()
	m.seconds.With(endpoint).ObserveDuration(d)
}
