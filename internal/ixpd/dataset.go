package ixpd

import (
	"crypto/sha256"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"ixplight/internal/report"
)

// generation is one immutable loaded dataset: the lab, its identity
// digest, and the response cache scoped to it. Handlers pin the
// pointer once per request; a reload builds a fresh generation and
// swaps the pointer, so an old generation keeps answering its
// in-flight requests until the last one returns.
type generation struct {
	id       uint64
	lab      *report.Lab
	digest   string // 16-hex identity prefix, embedded in every ETag
	sig      string // raw directory signature, compared by the reload poller
	loadedAt time.Time
	cache    *respCache
}

// buildGeneration loads a fresh generation: the snapshot directory
// when configured (delta chains walked incrementally by default),
// the calibrated synthetic lab otherwise.
func (s *Server) buildGeneration() (*generation, error) {
	cfg := &s.cfg
	var lab *report.Lab
	var sig string
	if cfg.SnapshotDir != "" {
		// Dir mode: a shell lab, so a (re)load pays snapshot decode,
		// never synthetic generation.
		lab = report.NewLabShell(cfg.Profiles, cfg.Seed, cfg.Scale, cfg.Parallel)
		lab.Telemetry = cfg.Telemetry
		lab.Materialize = cfg.Materialize
		lab.NoIncremental = cfg.NoIncremental
		var err error
		if sig, err = dirSignature(cfg.SnapshotDir); err != nil {
			return nil, err
		}
		if err := lab.LoadSnapshotDir(cfg.SnapshotDir); err != nil {
			return nil, err
		}
	} else {
		var err error
		lab, err = report.NewLabParallel(cfg.Profiles, cfg.Seed, cfg.Scale, cfg.Parallel)
		if err != nil {
			return nil, err
		}
		lab.Telemetry = cfg.Telemetry
		sig = syntheticSignature(cfg)
	}
	sum := sha256.Sum256([]byte(sig))
	return &generation{
		id:       s.genSeq.Add(1),
		lab:      lab,
		digest:   fmt.Sprintf("%x", sum[:8]),
		sig:      sig,
		loadedAt: time.Now(),
		cache:    newRespCache(cfg.cacheCap()),
	}, nil
}

// dirSignature fingerprints the dataset directory: every regular
// file's name, size and mtime, sorted by name. Any landed, rewritten
// or removed collection day changes the signature — the reload
// trigger and, hashed, the dataset half of every ETag. Content is not
// read: snapshot writes in this repo are atomic (temp + rename), so
// (name, size, mtime) moves if and only if bytes moved.
func dirSignature(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	lines := make([]string, 0, len(entries))
	for _, e := range entries {
		// Skip directories and dotfiles: AtomicWrite stages its temp
		// files dot-prefixed in the same directory, and a half-written
		// temp file must not look like a dataset change.
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return "", err
		}
		lines = append(lines, fmt.Sprintf("%s\x00%d\x00%d", e.Name(), info.Size(), info.ModTime().UnixNano()))
	}
	sort.Strings(lines)
	return "dir\x00" + dir + "\x00" + strings.Join(lines, "\n"), nil
}

// syntheticSignature identifies a generated lab: the knobs that fully
// determine it.
func syntheticSignature(cfg *Config) string {
	names := make([]string, len(cfg.Profiles))
	for i, p := range cfg.Profiles {
		names[i] = p.IXP
	}
	return fmt.Sprintf("synthetic\x00seed=%d\x00scale=%g\x00ixps=%s",
		cfg.Seed, cfg.Scale, strings.Join(names, ","))
}

// --- response cache -----------------------------------------------------

// respCache is the per-generation pre-marshaled response store: a
// bounded FIFO map from canonical query to encoded body. Bound small
// and per-generation: a reload starts cold by construction, so stale
// bodies cannot outlive their dataset.
type respCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string][]byte
	order   []string
}

func newRespCache(capacity int) *respCache {
	return &respCache{
		cap:     capacity,
		entries: make(map[string][]byte, capacity),
	}
}

func (c *respCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	data, ok := c.entries[key]
	c.mu.Unlock()
	return data, ok
}

func (c *respCache) put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = data
		return
	}
	if len(c.entries) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = data
	c.order = append(c.order, key)
}

func (c *respCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
