package ixpd

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"time"
)

// The load generator. It drives a running ixpd over HTTP through the
// three phases the serving pipeline is engineered around — cold
// (every query computed), warm (identical queries answered from the
// pre-marshaled cache) and etag (If-None-Match revalidation, 304s) —
// and reports throughput and latency quantiles per phase. The query
// mix is seeded and derived from /v1/meta's samples, so two runs
// against the same dataset issue byte-identical request streams.

// LoadOptions parameterises RunLoad.
type LoadOptions struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests. Nil = a fresh http.Client.
	Client *http.Client
	// Concurrency is the worker count per phase. 0 = 8.
	Concurrency int
	// Requests is the request count for the warm and etag phases (the
	// cold phase issues each distinct query exactly once). 0 = 2000.
	Requests int
	// Queries bounds the distinct query universe. 0 = 64.
	Queries int
	// Seed fixes the query mix and pick order.
	Seed int64
	// Mix weights the endpoint classes, e.g.
	// "experiments:4,as:3,community:2,series:1,meta:1" (the default).
	Mix string
}

func (o *LoadOptions) concurrency() int {
	if o.Concurrency > 0 {
		return o.Concurrency
	}
	return 8
}

func (o *LoadOptions) requests() int {
	if o.Requests > 0 {
		return o.Requests
	}
	return 2000
}

func (o *LoadOptions) queries() int {
	if o.Queries > 0 {
		return o.Queries
	}
	return 64
}

// PhaseResult is one load phase's outcome.
type PhaseResult struct {
	Phase    string        `json:"phase"`
	Requests int           `json:"requests"`
	Errors   int           `json:"errors"`
	Statuses map[int]int   `json:"statuses"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	QPS      float64       `json:"qps"`
	P50      time.Duration `json:"p50_ns"`
	P95      time.Duration `json:"p95_ns"`
	P99      time.Duration `json:"p99_ns"`
}

// LoadResult is a full cold/warm/etag run.
type LoadResult struct {
	BaseURL string        `json:"base_url"`
	Seed    int64         `json:"seed"`
	Queries int           `json:"queries"`
	Phases  []PhaseResult `json:"phases"`
}

// Phase returns the named phase result, or nil.
func (r *LoadResult) Phase(name string) *PhaseResult {
	for i := range r.Phases {
		if r.Phases[i].Phase == name {
			return &r.Phases[i]
		}
	}
	return nil
}

// RunLoad drives the three phases against a freshly started daemon.
// The cold numbers are only cold if nothing queried the daemon first.
func RunLoad(o LoadOptions) (*LoadResult, error) {
	client := o.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	queries, err := buildQueries(client, o)
	if err != nil {
		return nil, err
	}
	res := &LoadResult{BaseURL: o.BaseURL, Seed: o.Seed, Queries: len(queries)}

	// Cold: each distinct query exactly once, capturing its ETag for
	// the revalidation phase. One request per query index, so the
	// etags slice needs no lock.
	etags := make([]string, len(queries))
	cold := runPhase(client, o.BaseURL, "cold", queries, sequentialPicks(len(queries)), o.concurrency(),
		func(i int, resp *http.Response) { etags[i] = resp.Header.Get("ETag") })
	res.Phases = append(res.Phases, cold)

	rng := rand.New(rand.NewSource(o.Seed))
	warmPicks := randomPicks(rng, o.requests(), len(queries))
	res.Phases = append(res.Phases,
		runPhase(client, o.BaseURL, "warm", queries, warmPicks, o.concurrency(), nil))

	etagPicks := randomPicks(rng, o.requests(), len(queries))
	for i := range queries {
		queries[i].etag = etags[i]
	}
	res.Phases = append(res.Phases,
		runPhase(client, o.BaseURL, "etag", queries, etagPicks, o.concurrency(), nil))
	return res, nil
}

// query is one generated request.
type query struct {
	url  string
	etag string // set for the etag phase only
}

// buildQueries derives the seeded query universe from /v1/meta.
func buildQueries(client *http.Client, o LoadOptions) ([]query, error) {
	resp, err := client.Get(o.BaseURL + "/v1/meta")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET /v1/meta: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var meta MetaDoc
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		return nil, fmt.Errorf("decode /v1/meta: %w", err)
	}
	if len(meta.IXPs) == 0 {
		return nil, fmt.Errorf("dataset has no IXPs")
	}

	weights, err := parseMix(o.Mix)
	if err != nil {
		return nil, err
	}
	// Candidate pools per endpoint class, in meta order so the seed
	// fully determines the universe.
	pools := map[string][]string{"meta": {"/v1/meta"}}
	for _, name := range meta.Experiments {
		pools["experiments"] = append(pools["experiments"], "/v1/experiments/"+name)
	}
	for _, ixp := range meta.IXPs {
		pools["series"] = append(pools["series"], "/v1/series/"+ixp.IXP)
		for _, asn := range ixp.SampleASNs {
			pools["as"] = append(pools["as"], fmt.Sprintf("/v1/as/%d?ixp=%s", asn, ixp.IXP))
		}
		for _, c := range ixp.SampleCommunities {
			pools["community"] = append(pools["community"], "/v1/community/"+c)
		}
	}

	rng := rand.New(rand.NewSource(o.Seed))
	classes := make([]string, 0, 16)
	for class, w := range weights {
		if len(pools[class]) == 0 {
			continue
		}
		for i := 0; i < w; i++ {
			classes = append(classes, class)
		}
	}
	sort.Strings(classes) // map order must not leak into the stream
	if len(classes) == 0 {
		return nil, fmt.Errorf("mix %q selects no populated endpoint class", o.Mix)
	}
	seen := make(map[string]bool)
	queries := make([]query, 0, o.queries())
	for attempts := 0; len(queries) < o.queries() && attempts < o.queries()*20; attempts++ {
		pool := pools[classes[rng.Intn(len(classes))]]
		u := pool[rng.Intn(len(pool))]
		if seen[u] {
			continue
		}
		seen[u] = true
		queries = append(queries, query{url: u})
	}
	return queries, nil
}

// parseMix parses "class:weight,..." into weights.
func parseMix(mix string) (map[string]int, error) {
	if mix == "" {
		mix = "experiments:4,as:3,community:2,series:1,meta:1"
	}
	weights := make(map[string]int)
	for _, part := range strings.Split(mix, ",") {
		class, ws, ok := strings.Cut(strings.TrimSpace(part), ":")
		w := 1
		if ok {
			if _, err := fmt.Sscanf(ws, "%d", &w); err != nil || w < 0 {
				return nil, fmt.Errorf("bad mix weight %q", part)
			}
		}
		switch class {
		case "experiments", "as", "community", "series", "meta":
			weights[class] = w
		default:
			return nil, fmt.Errorf("unknown mix class %q", class)
		}
	}
	return weights, nil
}

func sequentialPicks(n int) []int {
	picks := make([]int, n)
	for i := range picks {
		picks[i] = i
	}
	return picks
}

func randomPicks(rng *rand.Rand, n, universe int) []int {
	picks := make([]int, n)
	for i := range picks {
		picks[i] = rng.Intn(universe)
	}
	return picks
}

// runPhase issues picks over queries with workers goroutines. Each
// request writes its latency and status into its own slot, so the hot
// path takes no locks.
func runPhase(client *http.Client, baseURL, name string, queries []query, picks []int, workers int, onResp func(int, *http.Response)) PhaseResult {
	durations := make([]time.Duration, len(picks))
	statuses := make([]int, len(picks))
	nextCh := make(chan int, workers)
	go func() {
		for i := range picks {
			nextCh <- i
		}
		close(nextCh)
	}()

	done := make(chan struct{})
	start := time.Now()
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range nextCh {
				pick := picks[i]
				q := queries[pick]
				req, err := http.NewRequest(http.MethodGet, baseURL+q.url, nil)
				if err != nil {
					continue
				}
				if q.etag != "" {
					req.Header.Set("If-None-Match", q.etag)
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				durations[i] = time.Since(t0)
				if err != nil {
					continue // status 0 counts as an error
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				statuses[i] = resp.StatusCode
				if onResp != nil && resp.StatusCode == http.StatusOK {
					onResp(pick, resp)
				}
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	elapsed := time.Since(start)

	return summarize(name, durations, statuses, elapsed)
}

func summarize(name string, durations []time.Duration, statuses []int, elapsed time.Duration) PhaseResult {
	res := PhaseResult{
		Phase:    name,
		Requests: len(durations),
		Statuses: make(map[int]int),
		Elapsed:  elapsed,
	}
	for _, code := range statuses {
		res.Statuses[code]++
		if code != http.StatusOK && code != http.StatusNotModified {
			res.Errors++
		}
	}
	if elapsed > 0 {
		res.QPS = float64(len(durations)) / elapsed.Seconds()
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	res.P50 = quantile(sorted, 0.50)
	res.P95 = quantile(sorted, 0.95)
	res.P99 = quantile(sorted, 0.99)
	return res
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}
