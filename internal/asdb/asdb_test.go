package asdb

import (
	"sync"
	"testing"
)

func TestDefaultRegistry(t *testing.T) {
	r := Default()
	if r.Len() == 0 {
		t.Fatal("default registry empty")
	}
	a, ok := r.Lookup(ASNHurricaneElectric)
	if !ok || a.Name != "Hurricane Electric" || a.Category != ISP {
		t.Errorf("HE lookup = %+v ok=%v", a, ok)
	}
	if got := r.Name(ASNGoogle); got != "Google" {
		t.Errorf("Name(Google) = %q", got)
	}
	if got := r.Name(4200001234); got != "AS4200001234" {
		t.Errorf("fallback name = %q", got)
	}
	if r.CategoryOf(ASNNetflix) != ContentProvider {
		t.Error("Netflix category wrong")
	}
	if r.CategoryOf(99999999) != Unknown {
		t.Error("unknown ASN category must be Unknown")
	}
}

func TestDefaultIsIndependent(t *testing.T) {
	a, b := Default(), Default()
	a.Register(AS{ASN: 1, Name: "test", Category: ISP})
	if _, ok := b.Lookup(1); ok {
		t.Error("Default() registries share state")
	}
}

func TestAllSorted(t *testing.T) {
	r := Default()
	all := r.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ASN >= all[i].ASN {
			t.Fatalf("All() not sorted: %d before %d", all[i-1].ASN, all[i].ASN)
		}
	}
}

func TestRegisterOverwrites(t *testing.T) {
	r := NewRegistry()
	r.Register(AS{ASN: 5, Name: "old", Category: ISP})
	r.Register(AS{ASN: 5, Name: "new", Category: Cloud})
	a, _ := r.Lookup(5)
	if a.Name != "new" || a.Category != Cloud {
		t.Errorf("overwrite failed: %+v", a)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestZeroValueRegistryUsable(t *testing.T) {
	var r Registry
	r.Register(AS{ASN: 7, Name: "z", Category: ISP})
	if got := r.Name(7); got != "z" {
		t.Errorf("zero-value registry Name = %q", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := Default()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base uint32) {
			defer wg.Done()
			for j := uint32(0); j < 200; j++ {
				r.Register(AS{ASN: base*1000 + j, Name: "x", Category: ISP})
				r.Lookup(ASNGoogle)
				r.Name(base*1000 + j)
			}
		}(uint32(i + 1))
	}
	wg.Wait()
	if r.Len() < 8*200 {
		t.Errorf("Len = %d after concurrent registers", r.Len())
	}
}

func TestCategoryString(t *testing.T) {
	cases := map[Category]string{
		Unknown: "unknown", ContentProvider: "content-provider", Cloud: "cloud",
		ISP: "isp", Transit: "transit", Educational: "educational",
		Enterprise: "enterprise", IXPInfra: "ixp-infra", Category(99): "unknown",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}
