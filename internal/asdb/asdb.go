// Package asdb is a small registry of Autonomous System metadata:
// names and operator categories for the networks the paper's analyses
// talk about (the heavily-targeted content providers, the large ISP
// "culprits", the Brazilian educational networks). The analysis layer
// uses it to label top-k results and to break targets down by
// category, mirroring the paper's §5.4 discussion.
package asdb

import (
	"fmt"
	"sort"
	"sync"
)

// Category is a coarse operator classification.
type Category int

// Operator categories.
const (
	Unknown Category = iota
	ContentProvider
	Cloud
	ISP
	Transit
	Educational
	Enterprise
	IXPInfra
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case ContentProvider:
		return "content-provider"
	case Cloud:
		return "cloud"
	case ISP:
		return "isp"
	case Transit:
		return "transit"
	case Educational:
		return "educational"
	case Enterprise:
		return "enterprise"
	case IXPInfra:
		return "ixp-infra"
	default:
		return "unknown"
	}
}

// AS describes one autonomous system.
type AS struct {
	ASN      uint32
	Name     string
	Category Category
}

// Registry maps ASNs to metadata. The zero value is empty and ready to
// use; Default() returns a registry preloaded with the networks the
// paper names.
type Registry struct {
	mu sync.RWMutex
	m  map[uint32]AS
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[uint32]AS)}
}

// Register inserts or replaces an entry.
func (r *Registry) Register(a AS) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[uint32]AS)
	}
	r.m[a.ASN] = a
}

// Lookup returns the entry for asn.
func (r *Registry) Lookup(asn uint32) (AS, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.m[asn]
	return a, ok
}

// Name returns the operator name, or "ASxxxx" when unregistered.
func (r *Registry) Name(asn uint32) string {
	if a, ok := r.Lookup(asn); ok {
		return a.Name
	}
	return fmt.Sprintf("AS%d", asn)
}

// CategoryOf returns the registered category, or Unknown.
func (r *Registry) CategoryOf(asn uint32) Category {
	a, _ := r.Lookup(asn)
	return a.Category
}

// All returns every entry ordered by ASN.
func (r *Registry) All() []AS {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]AS, 0, len(r.m))
	for _, a := range r.m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// Len returns the number of registered ASes.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// Prominent ASNs from the paper's §5.4/§5.5: the most-avoided content
// providers, the most frequent "culprits" and the Brazilian networks
// named in the IX.br analysis.
const (
	ASNHurricaneElectric = 6939
	ASNGoogle            = 15169
	ASNOVHcloud          = 16276
	ASNAkamai            = 20940
	ASNCloudflare        = 13335
	ASNNetflix           = 2906
	ASNEdgecast          = 15133
	ASNLeaseWeb          = 60781
	ASNApple             = 714
	ASNMeta              = 32934
	ASNAmazon            = 16509
	ASNMicrosoft         = 8075
	ASNFilanco           = 29076
	ASNRNP               = 1916
	ASNCDNetworks        = 36408
	ASNItau              = 28583 // stand-in: real Itau ASN is 32-bit
	ASNNICSimet          = 11284 // stand-in: real ASN is 32-bit
	ASNProlink           = 28260 // stand-in: real ASN is 32-bit
	ASNSyntegra          = 28669 // stand-in: real ASN is 32-bit
	ASNTelia             = 1299
	ASNGTT               = 3257
	ASNCogent            = 174
	ASNLumen             = 3356
)

var defaultEntries = []AS{
	{ASNHurricaneElectric, "Hurricane Electric", ISP},
	{ASNGoogle, "Google", ContentProvider},
	{ASNOVHcloud, "OVHcloud", Cloud},
	{ASNAkamai, "Akamai", ContentProvider},
	{ASNCloudflare, "Cloudflare", ContentProvider},
	{ASNNetflix, "Netflix", ContentProvider},
	{ASNEdgecast, "Edgecast", ContentProvider},
	{ASNLeaseWeb, "LeaseWeb", Cloud},
	{ASNApple, "Apple", ContentProvider},
	{ASNMeta, "Meta", ContentProvider},
	{ASNAmazon, "Amazon", Cloud},
	{ASNMicrosoft, "Microsoft", ContentProvider},
	{ASNFilanco, "Filanco", Cloud},
	{ASNRNP, "RNP", Educational},
	{ASNCDNetworks, "CDNetworks", ContentProvider},
	{ASNItau, "Itau", Enterprise},
	{ASNNICSimet, "NIC-Simet", Educational},
	{ASNProlink, "PROLINK", ISP},
	{ASNSyntegra, "Syntegra Telecom", ISP},
	{ASNTelia, "Telia", Transit},
	{ASNGTT, "GTT", Transit},
	{ASNCogent, "Cogent", Transit},
	{ASNLumen, "Lumen", Transit},
}

// Default returns a fresh registry preloaded with the paper's named
// networks. Each call returns an independent copy so callers may add
// their synthetic members without interfering.
func Default() *Registry {
	r := NewRegistry()
	for _, a := range defaultEntries {
		r.Register(a)
	}
	return r
}
