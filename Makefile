# Pre-PR check: `make check` runs vet, a full build, and the test
# suite with the race detector (the collector and LG client are
# exercised concurrently; -race is part of the contract).

GO ?= go

.PHONY: check vet build test race

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
