# Pre-PR check: `make check` runs vet, a full build, and the test
# suite with the race detector (the collector, LG client, analysis
# index and experiment pool are exercised concurrently; -race is part
# of the contract).

GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)

.PHONY: check vet build test race bench

check: vet build race

# vet runs the stock analyzers plus metriclint, which pins the metric
# naming contract: every family registered on a telemetry.Registry is
# a literal matching ^ixplight_[a-z_]+$.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/metriclint .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the full benchmark suite once — the paper-experiment
# benches in the root package plus the collection-path benches in
# internal/collector (crawl parallelism, snapshot codecs) and
# internal/lg (client hot paths) and internal/telemetry (instrument
# overhead, including the disabled-path zero-alloc pin) — and archives
# the merged results as
# machine-readable JSON (BENCH_<yyyymmdd>.json), for comparison across
# commits. The live text output still streams to the terminal.
BENCH_PKGS := . ./internal/collector ./internal/lg ./internal/telemetry
bench:
	$(GO) test -bench=. -benchmem -count=1 $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_DATE).json -date $(BENCH_DATE)
