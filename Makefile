# Pre-PR check: `make check` runs vet, a full build, and the test
# suite with the race detector (the collector, LG client, analysis
# index and experiment pool are exercised concurrently; -race is part
# of the contract).

GO ?= go
BENCH_DATE := $(shell date +%Y%m%d)

.PHONY: check vet build test race bench benchdiff soak soak-long ixpd-smoke

check: vet build race soak ixpd-smoke benchdiff

# vet runs the stock analyzers plus metriclint, which pins the metric
# naming contract: every family registered on a telemetry.Registry is
# a literal matching ^ixplight_[a-z_]+$.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/metriclint .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# soak is the quick deterministic chaos run: 3 simulated IXPs on real
# sockets, 2 servers killed and restarted mid-crawl, every robustness
# invariant checked (see internal/soak). Seeded, so a failure here is
# replayable with the same command. Finishes in a few seconds.
soak:
	$(GO) run ./cmd/soak -v

# soak-long is the opt-in heavy variant: every calibrated IXP, more
# kills, several chaos rounds and bigger workloads.
soak-long:
	$(GO) run ./cmd/soak -v -ixps 8 -kills 4 -rounds 3 -scale 0.01 -timeout 15m

# ixpd-smoke boots the analysis daemon on ephemeral loopback ports and
# walks its serving contract end to end: readiness gating, one
# experiment fetch with a strong ETag, a 304 revalidation of the same
# query, and a /metrics scrape showing the served requests. Seconds,
# deterministic, part of check.
ixpd-smoke:
	$(GO) run ./cmd/ixpd -smoke -ixps DE-CIX,AMS-IX -scale 0.01

# bench runs the full benchmark suite once — the paper-experiment
# benches in the root package plus the collection-path benches in
# internal/collector (crawl parallelism, snapshot codecs),
# internal/analysis (column-direct vs decode-then-classify index
# construction), internal/lg (client hot paths) and
# internal/telemetry (instrument overhead, including the
# disabled-path zero-alloc pin) and internal/ixpd (the daemon's
# cold/warm/304 serving tiers plus the socket-level load phases) — and
# archives the merged results as
# machine-readable JSON (BENCH_<yyyymmdd>.json), for comparison across
# commits. The live text output still streams to the terminal, and the
# archive is diffed against the previous one (informational here; the
# enforcing gate is `make check`).
BENCH_PKGS := . ./internal/collector ./internal/analysis ./internal/lg ./internal/telemetry ./internal/ixpd
bench:
	$(GO) test -bench=. -benchmem -count=1 $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_DATE).json -date $(BENCH_DATE)
	-$(GO) run ./cmd/benchdiff BENCH_$(BENCH_DATE).json

# benchdiff guards the snapshot-codec and index-construction suites,
# the tracing span-overhead tiers and the ixpd serving/load suites
# (`benchdiff -h` prints the full guarded list): it compares the two newest
# BENCH_*.json archives and fails on any ns/op regression above 20%. With fewer than two archives it is a
# no-op, so check stays green on fresh clones.
benchdiff:
	$(GO) run ./cmd/benchdiff
