package ixplight

import (
	"context"
	"io"

	"ixplight/internal/analysis"
	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/ixpgen"
	"ixplight/internal/lg"
	"ixplight/internal/mrt"
	"ixplight/internal/report"
	"ixplight/internal/rs"
	"ixplight/internal/rsconfig"
	"ixplight/internal/sanitize"
	"ixplight/internal/webdocs"
)

// BGP model.
type (
	// Community is an RFC 1997 standard BGP community.
	Community = bgp.Community
	// ExtendedCommunity is an RFC 4360 extended community.
	ExtendedCommunity = bgp.ExtendedCommunity
	// LargeCommunity is an RFC 8092 large community.
	LargeCommunity = bgp.LargeCommunity
	// Route is one RIB entry with its community lists.
	Route = bgp.Route
	// ASPath is a BGP AS path.
	ASPath = bgp.ASPath
)

// ParseCommunity parses "asn:value" notation.
func ParseCommunity(s string) (Community, error) { return bgp.ParseCommunity(s) }

// Dictionary and classification.
type (
	// Scheme is one IXP's community encoding.
	Scheme = dictionary.Scheme
	// Class is the classification of a community under a scheme.
	Class = dictionary.Class
	// ActionType is the paper's community taxonomy.
	ActionType = dictionary.ActionType
	// Dictionary is an indexed set of enumerated community entries.
	Dictionary = dictionary.Dictionary
)

// Action types (informational plus the four §5.3 groups).
const (
	Informational   = dictionary.Informational
	DoNotAnnounceTo = dictionary.DoNotAnnounceTo
	AnnounceOnlyTo  = dictionary.AnnounceOnlyTo
	PrependTo       = dictionary.PrependTo
	Blackhole       = dictionary.Blackhole
)

// SchemeByName returns the community scheme of one of the eight IXPs.
func SchemeByName(name string) *Scheme { return dictionary.ProfileByName(name) }

// BuildDictionary enumerates and indexes a scheme's dictionary.
func BuildDictionary(s *Scheme) *Dictionary { return dictionary.Build(s) }

// Route server.
type (
	// RouteServer is an RFC 7947 route server executing action
	// communities.
	RouteServer = rs.Server
	// RSConfig parameterises a route server.
	RSConfig = rs.Config
	// Peer is one member session at a route server.
	Peer = rs.Peer
)

// NewRouteServer builds a route server.
func NewRouteServer(cfg RSConfig) (*RouteServer, error) { return rs.New(cfg) }

// Looking glass.
type (
	// LGServer exposes a route server over the HTTP JSON API.
	LGServer = lg.Server
	// LGClient crawls a looking glass.
	LGClient = lg.Client
	// LGClientOptions tunes the crawler.
	LGClientOptions = lg.ClientOptions
	// LGRequestBudget caps in-flight requests across several crawlers.
	LGRequestBudget = lg.RequestBudget
)

// NewLGRequestBudget builds a global budget of n concurrent requests
// to share across clients via LGClientOptions.Budget.
func NewLGRequestBudget(n int) *LGRequestBudget { return lg.NewRequestBudget(n) }

// NewLGServer wraps a route server with the looking-glass API.
func NewLGServer(server *RouteServer) *LGServer { return lg.NewServer(server) }

// NewLGClient builds a crawler for the LG at base URL.
func NewLGClient(base string, opts LGClientOptions) *LGClient { return lg.NewClient(base, opts) }

// Snapshots and datasets.
type (
	// Snapshot is one day's view of one IXP route server.
	Snapshot = collector.Snapshot
	// Member is one AS present in a snapshot.
	Member = collector.Member
	// SnapshotCodec selects a serialisation format.
	SnapshotCodec = collector.Codec
	// SnapshotReader streams a snapshot file: header metadata without
	// decoding routes, then routes one at a time.
	SnapshotReader = collector.SnapshotReader
)

// The snapshot codecs, cheapest-to-write first.
const (
	CodecJSON     = collector.CodecJSON
	CodecJSONGzip = collector.CodecJSONGzip
	CodecGob      = collector.CodecGob
	CodecGobGzip  = collector.CodecGobGzip
	CodecBinary   = collector.CodecBinary
)

// SnapshotCodecs returns every supported codec.
func SnapshotCodecs() []SnapshotCodec { return collector.Codecs() }

// SaveSnapshot writes a snapshot into dir with the codec's canonical
// name and extension, returning the path.
func SaveSnapshot(dir string, s *Snapshot, codec SnapshotCodec) (string, error) {
	return collector.SaveSnapshot(dir, s, codec)
}

// LoadSnapshot reads one snapshot file, deducing the codec from the
// extension or the file contents.
func LoadSnapshot(path string) (*Snapshot, error) { return collector.LoadSnapshot(path) }

// OpenSnapshot opens a snapshot file for streaming reads; the caller
// must Close the reader.
func OpenSnapshot(path string) (*SnapshotReader, error) { return collector.OpenSnapshot(path) }

// Workload generation.
type (
	// Profile is one IXP's paper-calibrated generation profile.
	Profile = ixpgen.Profile
	// Workload is a generated set of members and routes.
	Workload = ixpgen.Workload
	// GenOptions parameterise a generation run.
	GenOptions = ixpgen.Options
	// TemporalOptions parameterise a snapshot time series.
	TemporalOptions = ixpgen.TemporalOptions
)

// Profiles returns the eight calibrated IXP profiles.
func Profiles() []Profile { return ixpgen.Profiles() }

// ProfileByName returns one profile, or nil.
func ProfileByName(name string) *Profile { return ixpgen.ProfileByName(name) }

// Generate builds a workload for one profile.
func Generate(p Profile, opt GenOptions) (*Workload, error) { return ixpgen.Generate(p, opt) }

// GenerateDay builds the workload for day d of a temporal series and
// returns its date stamp.
func GenerateDay(p Profile, o TemporalOptions, d int) (*Workload, string, error) {
	return ixpgen.GenerateDay(p, o, d)
}

// Analyses (one per paper artifact).
type (
	// Mix is the Fig. 1/2 community type mix.
	Mix = analysis.Mix
	// Usage is the Fig. 4a usage summary.
	Usage = analysis.Usage
	// NonMemberTargeting is the §5.5 summary.
	NonMemberTargeting = analysis.NonMemberTargeting
)

// ComputeMix tallies Fig. 1/2 for one snapshot family.
func ComputeMix(s *Snapshot, scheme *Scheme, v6 bool) Mix {
	return analysis.ComputeMix(s, scheme, v6)
}

// ActionShare computes Fig. 3's action fraction.
func ActionShare(s *Snapshot, scheme *Scheme, v6 bool) float64 {
	return analysis.ActionShare(s, scheme, v6)
}

// ComputeUsage tallies Fig. 4a.
func ComputeUsage(s *Snapshot, scheme *Scheme, v6 bool) Usage {
	return analysis.ComputeUsage(s, scheme, v6)
}

// ComputeNonMemberTargeting runs the §5.5 analysis with a top-k list.
func ComputeNonMemberTargeting(s *Snapshot, scheme *Scheme, v6 bool, k int) NonMemberTargeting {
	return analysis.ComputeNonMemberTargeting(s, scheme, v6, k)
}

// CleanSnapshots removes §3 collection valleys from a series.
func CleanSnapshots(snaps []*Snapshot) (kept []*Snapshot, removed int) {
	return sanitize.Clean(snaps, sanitize.Options{})
}

// CollectTarget is one looking glass in a multi-IXP collection run.
type CollectTarget = collector.Target

// CollectResult is the outcome of crawling one target.
type CollectResult = collector.Result

// CollectOptions tunes a crawl's fault tolerance: degraded (partial)
// snapshots, per-neighbor retries, error budget, checkpoint/resume.
type CollectOptions = collector.CollectOptions

// MemberError records one neighbor missing from a partial snapshot.
type MemberError = collector.MemberError

// CollectCheckpoint persists crawl progress for resumable collections.
type CollectCheckpoint = collector.Checkpoint

// CollectMultiOptions tunes a multi-target collection run: target
// parallelism plus the global in-flight request budget.
type CollectMultiOptions = collector.MultiOptions

// CollectAll crawls several looking glasses concurrently.
func CollectAll(ctx context.Context, targets []CollectTarget, date string, parallel int) []CollectResult {
	return collector.CollectAll(ctx, targets, date, parallel)
}

// CollectAllWithOptions crawls several looking glasses with full
// control over how target- and neighbor-level parallelism compose.
func CollectAllWithOptions(ctx context.Context, targets []CollectTarget, date string, opts CollectMultiOptions) []CollectResult {
	return collector.CollectAllWithOptions(ctx, targets, date, opts)
}

// WriteMRT dumps a snapshot as an MRT TABLE_DUMP_V2 archive (the
// RouteViews/RIPE RIS interchange format).
func WriteMRT(w io.Writer, s *Snapshot) error { return mrt.WriteRIB(w, s) }

// ReadMRT parses an MRT TABLE_DUMP_V2 archive into a snapshot.
func ReadMRT(r io.Reader) (*Snapshot, error) { return mrt.ReadRIB(r) }

// RenderRSConfig emits a BIRD-style route-server configuration for a
// scheme — the §3 artifact the dictionary extraction parses.
func RenderRSConfig(s *Scheme) string { return rsconfig.Render(s, rsconfig.Options{}) }

// RenderWebDocs emits the website community-documentation page for a
// scheme — the second §3 dictionary source.
func RenderWebDocs(s *Scheme) string { return webdocs.Render(s) }

// Lab bundles generated snapshots for running paper experiments.
type Lab = report.Lab

// NewLab generates the experiment lab for the given profiles.
func NewLab(profiles []Profile, seed int64, scale float64) (*Lab, error) {
	return report.NewLab(profiles, seed, scale)
}

// RunExperiment executes one paper experiment by name ("table1",
// "fig1" … "fig7", "table3", "table4", "sanitation").
func RunExperiment(l *Lab, w io.Writer, name string) error { return l.Run(w, name) }

// Experiments lists the runnable experiment names.
func Experiments() []string { return report.ExperimentNames }
