// Quickstart: classify communities under an IXP scheme, generate a
// small calibrated workload, and reproduce the paper's headline
// numbers for one IXP.
package main

import (
	"fmt"
	"log"

	"ixplight"
)

func main() {
	// 1. Community classification under DE-CIX's scheme.
	scheme := ixplight.SchemeByName("DE-CIX")
	for _, s := range []string{"0:15169", "6695:6695", "65502:13335", "65535:666", "64496:77"} {
		c, err := ixplight.ParseCommunity(s)
		if err != nil {
			log.Fatal(err)
		}
		cl := scheme.Classify(c)
		switch {
		case !cl.Known:
			fmt.Printf("%-12s → not defined by %s\n", c, scheme.IXP)
		case cl.Action == ixplight.Informational:
			fmt.Printf("%-12s → informational\n", c)
		default:
			fmt.Printf("%-12s → action: %v (target AS%d)\n", c, cl.Action, cl.TargetASN)
		}
	}

	// 2. The dictionary behind the classification (§3: 774 entries).
	dict := ixplight.BuildDictionary(scheme)
	fmt.Printf("\n%s dictionary: %d communities\n", scheme.IXP, dict.Size())

	// 3. Generate a 5%-scale DE-CIX and reproduce the headline numbers.
	profile := ixplight.ProfileByName("DE-CIX")
	w, err := ixplight.Generate(*profile, ixplight.GenOptions{Seed: 1, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	snap := w.Snapshot("2021-10-04")

	usage := ixplight.ComputeUsage(snap, profile.Scheme, false)
	fmt.Printf("\n%s (IPv4, scale 0.05):\n", profile.IXP)
	fmt.Printf("  members using action communities:  %.1f%%  (paper: 54.0%%)\n", 100*usage.ASShare())
	fmt.Printf("  routes carrying action communities: %.1f%%  (paper: 61.7%%)\n", 100*usage.RouteShare())
	fmt.Printf("  action share of defined standard:   %.1f%%  (paper: 70.4%%)\n",
		100*ixplight.ActionShare(snap, profile.Scheme, false))

	nm := ixplight.ComputeNonMemberTargeting(snap, profile.Scheme, false, 5)
	fmt.Printf("  actions targeting non-RS members:   %.1f%%  (paper: 49.5%%)\n", 100*nm.Share())
	fmt.Println("\n  top ineffective communities:")
	for i, cc := range nm.Top {
		fmt.Printf("   %d. %-12s ×%d\n", i+1, cc.Community, cc.Count)
	}
}
