// Pipeline example: the paper's §3 data pipeline end to end over HTTP —
// a flaky looking glass is crawled daily for three weeks, valleys are
// injected into two collections, sanitation removes them, and the §4
// stability numbers are computed over the surviving series.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"ixplight/internal/analysis"
	"ixplight/internal/collector"
	"ixplight/internal/ixpgen"
	"ixplight/internal/lg"
	"ixplight/internal/report"
	"ixplight/internal/rs"
	"ixplight/internal/sanitize"
)

func main() {
	profile := ixpgen.ProfileByName("AMS-IX")
	opts := ixpgen.TemporalOptions{
		Seed:       7,
		Scale:      0.02,
		Days:       21,
		ValleyDays: []int{5, 13}, // two injected collection failures
	}

	var series []*collector.Snapshot
	for day := 0; day < opts.Days; day++ {
		snap, err := collectDay(*profile, opts, day)
		if err != nil {
			log.Fatal(err)
		}
		series = append(series, snap)
		c := analysis.CountSnapshot(snap, false)
		fmt.Printf("day %2d (%s): %3d members, %6d v4 routes\n", day, snap.Date, c.Members, c.Routes)
	}

	kept, removed := sanitize.Clean(series, sanitize.Options{})
	fmt.Printf("\nsanitation: %d of %d snapshots removed as valleys (paper removed 13.5%%)\n",
		removed, len(series))

	fmt.Println("\nstability over the surviving series (cf. Table 3):")
	report.WriteStability(log.Writer(), profile.IXP+"-v4", analysis.Stability(kept, false))
	report.WriteStability(log.Writer(), profile.IXP+"-v6", analysis.Stability(kept, true))
}

// collectDay builds day d's IXP state, serves it through a flaky LG
// and crawls it back — the full production path, every day.
func collectDay(p ixpgen.Profile, opts ixpgen.TemporalOptions, day int) (*collector.Snapshot, error) {
	w, date, err := ixpgen.GenerateDay(p, opts, day)
	if err != nil {
		return nil, err
	}
	server, err := rs.New(rs.Config{Scheme: p.Scheme, ScrubActions: true})
	if err != nil {
		return nil, err
	}
	if err := w.Populate(server); err != nil {
		return nil, err
	}
	var handler http.Handler = lg.NewServer(server)
	handler = lg.Flaky(handler, lg.FlakyOptions{ErrorRate: 0.03, Seed: int64(day)})
	ts := httptest.NewServer(handler)
	defer ts.Close()

	client := lg.NewClient(ts.URL, lg.ClientOptions{
		MaxRetries:   15,
		RetryBackoff: time.Millisecond,
	})
	return collector.Collect(context.Background(), client, date)
}
