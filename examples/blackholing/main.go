// Blackholing example: a member under DDoS announces an RFC 7999
// host route at an IXP that supports blackholing (DE-CIX) and at one
// that does not (LINX), showing both the import special-case for /32s
// and the feature matrix from the paper's Table 2.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
	"ixplight/internal/netutil"
	"ixplight/internal/rs"
)

func main() {
	victim := netip.MustParsePrefix("1.0.7.66/32") // attacked host

	for _, ixp := range []string{"DE-CIX", "LINX"} {
		scheme := dictionary.ProfileByName(ixp)
		fmt.Printf("=== %s (blackholing supported: %v)\n", ixp, scheme.SupportsBlackhole)

		server, err := rs.New(rs.Config{Scheme: scheme, ScrubActions: true})
		if err != nil {
			log.Fatal(err)
		}
		for i, asn := range []uint32{64512, 64513} {
			if err := server.AddPeer(rs.Peer{
				ASN: asn, Name: fmt.Sprintf("member-%d", asn),
				AddrV4: netutil.PeerAddrV4(i + 1), IPv4: true,
			}); err != nil {
				log.Fatal(err)
			}
		}

		// The victim's normal /24 aggregate is always announced.
		aggregate := bgp.Route{
			Prefix:  netip.MustParsePrefix("1.0.7.0/24"),
			NextHop: netutil.PeerAddrV4(1),
			ASPath:  bgp.ASPath{64512},
		}
		if reason, _ := server.Announce(64512, aggregate); reason != rs.FilterNone {
			log.Fatalf("aggregate filtered: %v", reason)
		}

		// Under attack: blackhole the single host.
		bh := bgp.Route{
			Prefix:      victim,
			NextHop:     netutil.PeerAddrV4(1),
			ASPath:      bgp.ASPath{64512},
			Communities: []bgp.Community{bgp.BlackholeWellKnown},
		}
		reason, err := server.Announce(64512, bh)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("blackhole %s announcement: %v\n", victim, reason)

		fmt.Println("routes exported to AS64513:")
		for _, r := range server.ExportTo(64513) {
			marker := ""
			if bgp.HasCommunity(r.Communities, bgp.BlackholeWellKnown) {
				marker = "   ← blackhole, community retained for the receiver"
			}
			fmt.Printf("  %s%s\n", r.Prefix, marker)
		}
		fmt.Println()
	}
	fmt.Println("At DE-CIX the /32 bypasses the prefix-length filter and propagates")
	fmt.Println("with 65535:666 intact; at LINX the same announcement is filtered as")
	fmt.Println("out-of-bounds — matching the support matrix the paper observes.")
}
