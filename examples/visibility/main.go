// Visibility example: the paper's footnote-1 methodology claim,
// demonstrated with artifacts. A synthetic DE-CIX is dumped twice as
// MRT TABLE_DUMP_V2 archives — once from the looking-glass vantage
// point (ingress routes, pre-scrub) and once as a route collector
// peering at the RS would archive it (post-action export). Counting
// action communities in both archives shows why the paper had to use
// LGs instead of RouteViews/RIPE RIS.
package main

import (
	"bytes"
	"fmt"
	"log"

	"ixplight/internal/analysis"
	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/ixpgen"
	"ixplight/internal/mrt"
	"ixplight/internal/netutil"
	"ixplight/internal/rs"
)

func main() {
	profile := ixpgen.ProfileByName("DE-CIX")
	w, err := ixpgen.Generate(*profile, ixpgen.Options{Seed: 11, Scale: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	server, err := rs.New(rs.Config{Scheme: profile.Scheme, ScrubActions: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Populate(server); err != nil {
		log.Fatal(err)
	}

	// Vantage point 1: the looking glass (ingress Adj-RIB-Ins).
	lgView := w.Snapshot("2021-10-04")

	// Vantage point 2: a route collector peering like a member.
	const collectorASN = 65020
	if err := server.AddPeer(rs.Peer{
		ASN: collectorASN, Name: "route-collector",
		AddrV4: netutil.PeerAddrV4(9000), AddrV6: netutil.PeerAddrV6(9000),
		IPv4: true, IPv6: true,
	}); err != nil {
		log.Fatal(err)
	}
	exported := server.ExportTo(collectorASN)
	collectorView := &collector.Snapshot{IXP: "DE-CIX", Date: "2021-10-04"}
	collectorView.Members = append(collectorView.Members, lgView.Members...)
	collectorView.Routes = exported
	collectorView.Normalize()

	// Both views as RouteViews-style MRT archives.
	var lgMRT, colMRT bytes.Buffer
	if err := mrt.WriteRIB(&lgMRT, lgView); err != nil {
		log.Fatal(err)
	}
	if err := mrt.WriteRIB(&colMRT, collectorView); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MRT archives: LG view %d bytes, collector view %d bytes\n", lgMRT.Len(), colMRT.Len())

	// Parse them back (what a measurement pipeline would do) and count.
	lgParsed, err := mrt.ReadRIB(&lgMRT)
	if err != nil {
		log.Fatal(err)
	}
	colParsed, err := mrt.ReadRIB(&colMRT)
	if err != nil {
		log.Fatal(err)
	}
	v := analysis.CompareVisibility(lgParsed.Routes, colParsed.Routes, profile.Scheme)
	fmt.Printf("action instances in the LG archive:        %d\n", v.LGActionInstances)
	fmt.Printf("action instances in the collector archive: %d (over %d routes)\n",
		v.CollectorActionInstances, v.CollectorRoutes)
	fmt.Printf("invisible at the collector: %.1f%%\n", 100*v.VisibilityGap())

	// The few survivors are blackhole markers, which the RS must keep.
	for _, r := range colParsed.Routes {
		if bgp.HasCommunity(r.Communities, bgp.BlackholeWellKnown) {
			fmt.Printf("  surviving blackhole marker on %s\n", r.Prefix)
		}
	}
}
