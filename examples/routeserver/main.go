// Route-server example: three members peer with a DE-CIX-style route
// server over real BGP/TCP sessions and steer propagation with action
// communities. Shows do-not-announce-to, the block-all + whitelist
// pattern, prepending, and community scrubbing — the §2 semantics the
// whole measurement rests on.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"ixplight/internal/bgp"
	"ixplight/internal/bgp/session"
	"ixplight/internal/dictionary"
	"ixplight/internal/netutil"
	"ixplight/internal/rs"
)

func main() {
	scheme := dictionary.ProfileByName("DE-CIX")
	server, err := rs.New(rs.Config{Scheme: scheme, ScrubActions: true})
	if err != nil {
		log.Fatal(err)
	}
	// Register the three members (AS 64512–64514).
	for i, asn := range []uint32{64512, 64513, 64514} {
		if err := server.AddPeer(rs.Peer{
			ASN: asn, Name: fmt.Sprintf("member-%d", asn),
			AddrV4: netutil.PeerAddrV4(i + 1), IPv4: true,
		}); err != nil {
			log.Fatal(err)
		}
	}

	// The RS listens for BGP sessions on a loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	rsCfg := session.Config{ASN: uint32(scheme.RSASN), RouterID: netip.MustParseAddr("192.0.2.1")}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go session.ServeConn(context.Background(), conn, rsCfg,
				func(peer uint32, u *bgp.Update) error {
					for _, r := range u.Routes() {
						if reason, err := server.Announce(peer, r); err != nil {
							return err
						} else if reason != rs.FilterNone {
							log.Printf("filtered %s from AS%d: %v", r.Prefix, peer, reason)
						}
					}
					return nil
				})
		}
	}()

	// AS64512 announces three routes over a real BGP session:
	//  a) plain, to everyone
	//  b) do-not-announce-to AS64513
	//  c) block-all + announce-only-to AS64513, prepended 2x
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	sess, err := session.Establish(conn, session.Config{ASN: 64512, RouterID: netip.MustParseAddr("10.0.0.1")})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	prepend2, _ := scheme.Prepend(2, 64513)
	announce := []struct {
		label string
		comms []bgp.Community
	}{
		{"plain", nil},
		{"avoid AS64513", []bgp.Community{scheme.DoNotAnnounce(64513)}},
		{"whitelist AS64513 + prepend 2x", []bgp.Community{
			scheme.DoNotAnnounceAll(), scheme.AnnounceOnly(64513), prepend2}},
	}
	for i, a := range announce {
		r := bgp.Route{
			Prefix:      netutil.SyntheticV4Prefix(i),
			NextHop:     netutil.PeerAddrV4(1),
			ASPath:      bgp.ASPath{64512},
			Communities: a.comms,
		}
		if err := sess.SendRoute(r); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("announced %s (%s)\n", r.Prefix, a.label)
	}

	// Wait until the RS has processed all three announcements.
	waitFor(func() bool { return len(server.AcceptedRoutes(64512)) == 3 })

	for _, target := range []uint32{64513, 64514} {
		fmt.Printf("\nexport towards AS%d:\n", target)
		for _, r := range server.ExportTo(target) {
			fmt.Printf("  %s path=[%s] communities=%v\n", r.Prefix, r.ASPath, r.Communities)
		}
	}
	fmt.Println("\nnote: AS64513 misses the avoided route but gets the whitelisted one")
	fmt.Println("      (with two prepends); AS64514 sees the opposite; all action")
	fmt.Println("      communities were scrubbed on export.")
}

// waitFor polls until cond holds (the announcements travel over a real
// socket, so the RS state is eventually consistent with the sends).
func waitFor(cond func() bool) {
	for i := 0; i < 1000; i++ {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("timed out waiting for announcements")
}
