// Command benchdiff compares two archived benchmark reports
// (BENCH_<yyyymmdd>.json, as written by `make bench` via benchjson)
// and fails when a guarded suite regressed: any benchmark whose
// ns/op grew by more than -threshold (default 20%) exits non-zero.
// `make check` runs it over the two newest archives, so a codec or
// index slowdown fails the pre-PR gate instead of landing silently.
//
// Usage:
//
//	benchdiff                    # two newest BENCH_*.json in -dir
//	benchdiff NEW.json           # baseline = newest older file in its dir
//	benchdiff OLD.json NEW.json  # explicit pair
//
// Only benchmarks matching -filter are guarded (default: the
// snapshot-codec, delta-codec and index suites, the span-overhead
// tiers, and the ixpd serving/load suites — the repo's perf-critical
// paths, the tracing zero-cost contract, and the daemon's three-tier
// serving pipeline). Benchmarks present on one side only are
// reported but never fail the run — machines and dates differ, the
// gate is for regressions in what both runs measured. Unguarded
// benchmarks appearing or disappearing between the runs are listed
// too, as informational added/removed lines, so a renamed or dropped
// suite is visible instead of silently leaving the report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Result and Report mirror cmd/benchjson's schema.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type Report struct {
	Date       string   `json:"date"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Delta is one guarded benchmark's comparison.
type Delta struct {
	Key      string
	Old, New float64 // ns/op
	Ratio    float64 // (new-old)/old
}

// guardedSuites are the benchmark name prefixes the default -filter
// gates: regressions here fail `make check`.
var guardedSuites = []string{
	"SnapshotCodec", "SnapshotStream", "SnapshotDelta",
	"SeriesAdvance", "SeriesFullRebuild", "Index", "SpanOverhead",
	"IxpdServe", "IxpdBench",
}

func main() {
	dir := flag.String("dir", ".", "directory scanned for BENCH_*.json when files are not given")
	threshold := flag.Float64("threshold", 0.20, "maximum tolerated ns/op growth (0.20 = +20%)")
	filter := flag.String("filter", "^("+strings.Join(guardedSuites, "|")+")",
		"regexp selecting the guarded benchmarks (matched against the name without the Benchmark prefix)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] [OLD.json] [NEW.json]\n\nguarded suites (default -filter):\n")
		for _, s := range guardedSuites {
			fmt.Fprintf(flag.CommandLine.Output(), "  %s\n", s)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	re, err := regexp.Compile(*filter)
	if err != nil {
		fatal(err)
	}

	var oldPath, newPath string
	switch flag.NArg() {
	case 0:
		archives, err := findArchives(*dir)
		if err != nil {
			fatal(err)
		}
		if len(archives) < 2 {
			fmt.Printf("benchdiff: %d archive(s) in %s — nothing to compare\n", len(archives), *dir)
			return
		}
		oldPath, newPath = archives[len(archives)-2], archives[len(archives)-1]
	case 1:
		newPath = flag.Arg(0)
		archives, err := findArchives(filepath.Dir(newPath))
		if err != nil {
			fatal(err)
		}
		for _, a := range archives {
			if filepath.Base(a) < filepath.Base(newPath) {
				oldPath = a
			}
		}
		if oldPath == "" {
			fmt.Printf("benchdiff: no archive older than %s — nothing to compare\n", newPath)
			return
		}
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fatal(fmt.Errorf("at most two report files expected"))
	}

	oldRep, err := readReport(oldPath)
	if err != nil {
		fatal(err)
	}
	newRep, err := readReport(newPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchdiff: %s (%s) vs %s (%s)\n", oldPath, oldRep.Date, newPath, newRep.Date)

	deltas, onlyOld, onlyNew, removed, added := compare(oldRep, newRep, re)
	for _, k := range onlyOld {
		fmt.Printf("  gone:    %s\n", k)
	}
	for _, k := range onlyNew {
		fmt.Printf("  new:     %s\n", k)
	}
	for _, k := range removed {
		fmt.Printf("  removed: %s (unguarded)\n", k)
	}
	for _, k := range added {
		fmt.Printf("  added:   %s (unguarded)\n", k)
	}
	failed := false
	for _, d := range deltas {
		mark := " "
		if d.Ratio > *threshold {
			mark = "✗"
			failed = true
		} else if d.Ratio < -*threshold {
			mark = "✓"
		}
		fmt.Printf("  %s %-56s %12.0f → %12.0f ns/op  %+6.1f%%\n", mark, d.Key, d.Old, d.New, 100*d.Ratio)
	}
	if failed {
		fmt.Printf("benchdiff: ns/op regression over %.0f%% in guarded suites\n", 100**threshold)
		os.Exit(1)
	}
}

// findArchives returns dir's BENCH_*.json paths sorted by name —
// the yyyymmdd stamp makes lexical order chronological.
func findArchives(dir string) ([]string, error) {
	archives, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Slice(archives, func(i, j int) bool {
		return filepath.Base(archives[i]) < filepath.Base(archives[j])
	})
	return archives, nil
}

func readReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := &Report{}
	if err := json.Unmarshal(buf, r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// key identifies a benchmark across runs.
func key(r Result) string {
	return fmt.Sprintf("%s.%s-%d", r.Pkg, r.Name, r.Procs)
}

// compare pairs the guarded benchmarks of both reports by key and
// computes their ns/op deltas, plus the guarded keys present on one
// side only (gone/new) and the unguarded one-side-only keys
// (removed/added) — informational, never failing.
func compare(oldRep, newRep *Report, guarded *regexp.Regexp) (deltas []Delta, onlyOld, onlyNew, removed, added []string) {
	olds := map[string]float64{}
	oldKeys := map[string]bool{}
	for _, r := range oldRep.Benchmarks {
		k := key(r)
		oldKeys[k] = true
		if guarded.MatchString(r.Name) {
			olds[k] = r.Metrics["ns/op"]
		}
	}
	seen := map[string]bool{}
	newKeys := map[string]bool{}
	for _, r := range newRep.Benchmarks {
		k := key(r)
		newKeys[k] = true
		if !guarded.MatchString(r.Name) {
			if !oldKeys[k] {
				added = append(added, k)
			}
			continue
		}
		seen[k] = true
		old, ok := olds[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		d := Delta{Key: k, Old: old, New: r.Metrics["ns/op"]}
		if old > 0 {
			d.Ratio = (d.New - d.Old) / d.Old
		}
		deltas = append(deltas, d)
	}
	for _, r := range oldRep.Benchmarks {
		if k := key(r); !guarded.MatchString(r.Name) && !newKeys[k] {
			removed = append(removed, k)
		}
	}
	for k := range olds {
		if !seen[k] {
			onlyOld = append(onlyOld, k)
		}
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Ratio > deltas[j].Ratio })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	sort.Strings(removed)
	sort.Strings(added)
	return deltas, onlyOld, onlyNew, removed, added
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
