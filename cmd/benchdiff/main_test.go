package main

import (
	"regexp"
	"strings"
	"testing"
)

func rep(results ...Result) *Report { return &Report{Benchmarks: results} }

func res(name string, nsop float64) Result {
	return Result{Name: name, Pkg: "p", Procs: 1, Metrics: map[string]float64{"ns/op": nsop}}
}

func TestCompare(t *testing.T) {
	guard := regexp.MustCompile("^(SnapshotCodec|Index)")
	oldRep := rep(
		res("SnapshotCodec/binary", 1000),
		res("IndexFromColumns", 2000),
		res("IndexGone", 500),
		res("Unguarded", 10),
		res("UnguardedDropped", 11),
	)
	newRep := rep(
		res("SnapshotCodec/binary", 1300), // +30%
		res("IndexFromColumns", 1900),     // -5%
		res("IndexFresh", 700),
		res("Unguarded", 99999),
		res("UnguardedFresh", 12),
	)
	deltas, onlyOld, onlyNew, removed, added := compare(oldRep, newRep, guard)
	if len(deltas) != 2 {
		t.Fatalf("deltas: %+v", deltas)
	}
	// Sorted worst-first.
	if deltas[0].Key != "p.SnapshotCodec/binary-1" || deltas[0].Ratio < 0.29 || deltas[0].Ratio > 0.31 {
		t.Errorf("worst delta wrong: %+v", deltas[0])
	}
	if deltas[1].Key != "p.IndexFromColumns-1" || deltas[1].Ratio > 0 {
		t.Errorf("improvement delta wrong: %+v", deltas[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "p.IndexGone-1" {
		t.Errorf("onlyOld: %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "p.IndexFresh-1" {
		t.Errorf("onlyNew: %v", onlyNew)
	}
	// One-side-only unguarded benchmarks surface as informational
	// added/removed lines instead of vanishing from the report.
	if len(removed) != 1 || removed[0] != "p.UnguardedDropped-1" {
		t.Errorf("removed: %v", removed)
	}
	if len(added) != 1 || added[0] != "p.UnguardedFresh-1" {
		t.Errorf("added: %v", added)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	guard := regexp.MustCompile("Index")
	deltas, _, _, _, _ := compare(rep(res("Index", 0)), rep(res("Index", 100)), guard)
	if len(deltas) != 1 || deltas[0].Ratio != 0 {
		t.Errorf("zero baseline must not divide: %+v", deltas)
	}
}

// TestDefaultFilterGuardsIxpd pins the default gate over the daemon's
// serving and load suites (and that the Index prefix does not
// accidentally swallow them or vice versa).
func TestDefaultFilterGuardsIxpd(t *testing.T) {
	guard := regexp.MustCompile("^(" + strings.Join(guardedSuites, "|") + ")")
	for _, name := range []string{
		"IxpdServe/cold", "IxpdServe/warm", "IxpdServe/etag304", "IxpdBench",
		"IndexFromColumns", "SpanOverhead/off",
	} {
		if !guard.MatchString(name) {
			t.Errorf("default filter misses guarded suite %s", name)
		}
	}
	for _, name := range []string{"LGCrawl", "Xipd", "ServeIxpd"} {
		if guard.MatchString(name) {
			t.Errorf("default filter over-matches %s", name)
		}
	}
}
