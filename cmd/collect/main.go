// Command collect crawls a looking glass into a snapshot file — the
// §3 collection step, with the fault tolerance the twelve-week
// campaign needed: degraded (partial) snapshots, per-target error
// budgets, and checkpoint/resume.
//
// Usage:
//
//	collect -url http://localhost:8080 [-date 2021-10-04] [-out ./data]
//	        [-codec json|json.gz|gob|gob.gz|binary|mrt|delta] [-interval 100ms] [-retries 5]
//	        [-partial] [-resume] [-checkpoint path] [-neighbor-parallel 1]
//	        [-neighbor-retries 1] [-error-budget 0] [-request-timeout 30s]
//	        [-metrics-addr :9100] [-trace path|none]
//
// Every run records crawl telemetry: an end-of-run summary is logged
// and the full registry is archived as <out>/telemetry.json next to
// the snapshot. With -metrics-addr the same registry is additionally
// served live on /metrics, /debug/vars and /debug/pprof while the
// crawl runs. Every run also writes a hierarchical trace ledger —
// one span per crawl, neighbor and LG request — to <out>/trace.jsonl
// (kept even when the crawl fails; -trace relocates it, -trace none
// disables it). Inspect it with cmd/tracecat.
//
// -codec delta grows a snapshot chain in -out instead of standalone
// files: the IXP's first day is stored as a full binary snapshot, and
// every later run appends one .delta file encoding just that day's
// churn against the previous day.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"ixplight/internal/collector"
	"ixplight/internal/lg"
	"ixplight/internal/mrt"
	"ixplight/internal/telemetry"
)

func main() {
	url := flag.String("url", "http://localhost:8080", "looking glass base URL")
	date := flag.String("date", time.Now().UTC().Format("2006-01-02"), "snapshot date stamp")
	out := flag.String("out", "./data", "output directory")
	codecName := flag.String("codec", "json.gz", "snapshot codec: json, json.gz, gob, gob.gz, binary, mrt, delta")
	interval := flag.Duration("interval", 50*time.Millisecond, "minimum delay between LG requests")
	retries := flag.Int("retries", 5, "retries per failed request")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall collection deadline")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 = none)")
	partial := flag.Bool("partial", false, "keep degraded snapshots: record failed neighbors instead of aborting")
	resume := flag.Bool("resume", false, "resume from the checkpoint file if one exists")
	checkpoint := flag.String("checkpoint", "", "checkpoint file for crawl progress (default <out>/checkpoint-<date>.json)")
	neighborRetries := flag.Int("neighbor-retries", 1, "extra crawl attempts per failing neighbor")
	errorBudget := flag.Int("error-budget", 0, "consecutive neighbor failures before abandoning the LG (0 = unlimited)")
	neighborParallel := flag.Int("neighbor-parallel", 1, "concurrent per-neighbor route crawls (1 = sequential; snapshots are identical either way)")
	metricsAddr := flag.String("metrics-addr", "", "optional telemetry listen address serving /metrics, /debug/vars and /debug/pprof during the crawl")
	tracePath := flag.String("trace", "", `trace ledger path (default <out>/trace.jsonl, "none" to disable)`)
	flag.Parse()

	reg := telemetry.New()
	lgMetrics := lg.NewMetrics(reg)
	colMetrics := collector.NewMetrics(reg)
	// The trace ledger lives next to telemetry.json and, like it, is
	// kept even when the crawl fails — the span tree is the post-mortem.
	ledgerPath := *tracePath
	if ledgerPath == "" {
		ledgerPath = filepath.Join(*out, "trace.jsonl")
	}
	var traceSink *telemetry.JSONLSink
	if ledgerPath != "none" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			log.Fatal(err)
		}
		sink, err := telemetry.NewJSONLSink(ledgerPath, 0)
		if err != nil {
			log.Fatal(err)
		}
		traceSink = sink
		reg.SetSpanSink(sink)
	}
	// fatal archives the trace ledger before exiting: log.Fatal calls
	// os.Exit, so deferred closes never run on the failure path.
	fatal := func(err error) {
		archiveTrace(traceSink, ledgerPath)
		log.Fatal(err)
	}
	if *metricsAddr != "" {
		go func() {
			log.Printf("telemetry on %s (/metrics, /debug/vars, /debug/pprof)", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, reg.Handler()); err != nil {
				log.Printf("telemetry listener: %v", err)
			}
		}()
	}

	asMRT := *codecName == "mrt"
	asDelta := *codecName == "delta"
	var codec collector.Codec
	if !asMRT && !asDelta {
		var err error
		codec, err = parseCodec(*codecName)
		if err != nil {
			fatal(err)
		}
	}
	client := lg.NewClient(*url, lg.ClientOptions{
		MinInterval:    *interval,
		MaxRetries:     *retries,
		RetryBackoff:   100 * time.Millisecond,
		RequestTimeout: *reqTimeout,
		MaxInFlight:    *neighborParallel,
		Metrics:        lgMetrics,
	})
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	ckptPath := *checkpoint
	if ckptPath == "" {
		ckptPath = filepath.Join(*out, fmt.Sprintf("checkpoint-%s.json", *date))
	}
	var stats collector.CrawlStats
	opts := collector.CollectOptions{
		Partial:             *partial,
		NeighborRetries:     *neighborRetries,
		ErrorBudget:         *errorBudget,
		NeighborParallelism: *neighborParallel,
		Metrics:             colMetrics,
		Stats:               &stats,
	}
	if *partial || *resume {
		opts.CheckpointPath = ckptPath
	}
	if *resume {
		// Lenient resume: a corrupt checkpoint (crash mid-write, torn
		// copy) is logged and moved aside, never fatal — only real I/O
		// errors abort.
		ck, err := collector.ResumeCheckpoint(ckptPath, log.Printf)
		if err != nil {
			fatal(err)
		}
		if ck != nil {
			log.Printf("resuming from %s: %d neighbors done, %d routes", ckptPath, len(ck.Done), len(ck.Routes))
			opts.Checkpoint = ck
		} else {
			log.Printf("no checkpoint at %s, starting fresh", ckptPath)
		}
	}

	start := time.Now()
	snap, err := collector.CollectWithOptions(ctx, client, *date, opts)
	// The telemetry archive is written even for failed crawls — a
	// post-mortem needs the retry and budget counters most when the
	// snapshot never materialized.
	telPath := filepath.Join(*out, "telemetry.json")
	if terr := collector.AtomicWrite(telPath, reg.WriteJSON); terr != nil {
		log.Printf("telemetry archive: %v", terr)
		telPath = ""
	}
	// Every span has ended by now (CollectWithOptions returned), so the
	// ledger is complete; close it here so it survives a failed crawl.
	archiveTrace(traceSink, ledgerPath)
	traceSink = nil
	if err != nil {
		log.Fatal(err)
	}
	var path string
	switch {
	case asMRT:
		path, err = saveMRT(*out, snap)
	case asDelta:
		path, err = saveDelta(*out, snap)
	default:
		path, err = collector.SaveSnapshot(*out, snap, codec)
	}
	if err != nil {
		log.Fatal(err)
	}
	if snap.Partial {
		log.Printf("PARTIAL snapshot: %d neighbors missing", len(snap.MemberErrors))
		for _, me := range snap.MemberErrors {
			log.Printf("  AS%d [%s] after %d attempts: %s", me.ASN, me.Stage, me.Attempts, me.Err)
		}
	}
	log.Printf("collected %s: %d members, %d routes, %d filtered (%d requests, %v) → %s",
		snap.IXP, len(snap.Members), len(snap.Routes), snap.FilteredCount,
		client.HTTPRequests(), time.Since(start).Round(time.Millisecond), path)
	budget := "no budget"
	if stats.BudgetTripped {
		budget = "budget tripped"
	} else if stats.BudgetRemaining >= 0 {
		budget = fmt.Sprintf("budget %d left", stats.BudgetRemaining)
	}
	log.Printf("telemetry: %d calls over %d HTTP requests, %d/%d neighbors ok, %d neighbor retries, slowest AS%d %v, %s",
		client.Requests(), client.HTTPRequests(),
		stats.Neighbors-stats.Failed-stats.Skipped, stats.Neighbors,
		stats.Retries, stats.SlowestASN, stats.Slowest.Round(time.Millisecond), budget)
	if telPath != "" {
		log.Printf("telemetry archived → %s", telPath)
	}
}

// archiveTrace flushes and closes the trace ledger, logging where it
// landed (inspect it with `tracecat <path>`). Safe to call with a nil
// sink and idempotent via the caller nilling traceSink after use.
func archiveTrace(sink *telemetry.JSONLSink, path string) {
	if sink == nil {
		return
	}
	if err := sink.Close(); err != nil {
		log.Printf("trace ledger: %v", err)
		return
	}
	if n := sink.Dropped(); n > 0 {
		log.Printf("trace ledger → %s (%d spans dropped by size cap)", path, n)
		return
	}
	log.Printf("trace ledger → %s", path)
}

// saveDelta appends the snapshot to its IXP's delta chain in dir: the
// first day of a chain is written as a full binary snapshot (the
// base), every later day as a .delta against the previous one. The
// chain is discovered by reading headers, not filenames, so files
// renamed by hand still chain correctly.
func saveDelta(dir string, snap *collector.Snapshot) (string, error) {
	app, tipDate, err := chainTip(dir, snap.IXP)
	if err != nil {
		return "", err
	}
	if app == nil {
		return collector.SaveSnapshot(dir, snap, collector.CodecBinary)
	}
	if tipDate >= snap.Date {
		return "", fmt.Errorf("delta chain for %s already ends at %s, refusing to append %s", snap.IXP, tipDate, snap.Date)
	}
	buf, err := app.Encoder().Encode(snap)
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%s%s", snap.IXP, snap.Date, collector.DeltaExt))
	if err := collector.AtomicWrite(path, func(w io.Writer) error {
		_, werr := w.Write(buf)
		return werr
	}); err != nil {
		return "", err
	}
	return path, nil
}

// chainTip reconstructs the current tip of ixp's delta chain in dir:
// the newest full binary snapshot plus every delta that extends it, in
// date order. Returns a nil applier when dir holds no chain for ixp
// yet (the caller then writes the base).
func chainTip(dir, ixp string) (*collector.DeltaApplier, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "", nil
		}
		return nil, "", err
	}
	var base *collector.Snapshot
	var deltas []*collector.DeltaReader
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		if strings.HasSuffix(e.Name(), collector.DeltaExt) {
			dr, err := collector.OpenDelta(path)
			if err != nil {
				return nil, "", fmt.Errorf("%s: %w", e.Name(), err)
			}
			if dr.Header().IXP == ixp {
				deltas = append(deltas, dr)
			}
			continue
		}
		if !strings.HasSuffix(e.Name(), ".bin") {
			continue
		}
		s, err := collector.LoadSnapshot(path)
		if err != nil {
			return nil, "", fmt.Errorf("%s: %w", e.Name(), err)
		}
		if s.IXP == ixp && (base == nil || s.Date < base.Date) {
			base = s
		}
	}
	if base == nil {
		if len(deltas) > 0 {
			return nil, "", fmt.Errorf("found %d delta files for %s but no binary base snapshot", len(deltas), ixp)
		}
		return nil, "", nil
	}
	app, err := collector.NewDeltaApplier(base)
	if err != nil {
		return nil, "", err
	}
	sort.Slice(deltas, func(i, j int) bool {
		return deltas[i].Header().Date < deltas[j].Header().Date
	})
	tip := base.Date
	for _, dr := range deltas {
		s, err := app.Apply(dr)
		if err != nil {
			return nil, "", fmt.Errorf("reconstructing %s chain at %s: %w", ixp, dr.Header().Date, err)
		}
		tip = s.Date
	}
	return app, tip, nil
}

// saveMRT writes the snapshot as a RouteViews-style TABLE_DUMP_V2
// archive, atomically (temp file + rename) like every other snapshot
// format, so a crash mid-write cannot leave a truncated archive.
func saveMRT(dir string, snap *collector.Snapshot) (string, error) {
	path := filepath.Join(dir, fmt.Sprintf("%s-%s.mrt", snap.IXP, snap.Date))
	if err := collector.AtomicWrite(path, func(w io.Writer) error {
		return mrt.WriteRIB(w, snap)
	}); err != nil {
		return "", err
	}
	return path, nil
}

func parseCodec(name string) (collector.Codec, error) {
	switch name {
	case "json":
		return collector.CodecJSON, nil
	case "json.gz":
		return collector.CodecJSONGzip, nil
	case "gob":
		return collector.CodecGob, nil
	case "gob.gz":
		return collector.CodecGobGzip, nil
	case "binary", "bin":
		return collector.CodecBinary, nil
	default:
		return 0, fmt.Errorf("unknown codec %q", name)
	}
}
