// Command analyze regenerates the paper's tables and figures from a
// synthetic lab (or from previously collected snapshot files).
//
// Usage:
//
//	analyze [-exp all|table1|fig1|...|sanitation] [-scale 0.05] [-seed 42]
//	        [-ixps IX.br-SP,DE-CIX,LINX,AMS-IX | all] [-snapshots dir]
//	        [-parallel N] [-trace file]
//
// Without -snapshots it generates the calibrated synthetic workload;
// with -snapshots it loads stored snapshot files for the latest date
// per IXP instead. Columnar binary snapshot files are indexed
// straight off their columns by default (no []bgp.Route is ever
// materialized); -materialize restores the decode-then-classify
// loading path. Delta chains (a day-0 .bin plus daily .delta files,
// as written by `ixpgen -codec delta` or `collect -codec delta`) are
// walked incrementally: each day's index advances from the previous
// day's by applying the delta; -no-incremental applies the deltas
// but rebuilds each day's index from its own columns instead. Every
// path produces byte-identical experiment output.
//
// -parallel bounds the worker pools: experiments fan out across the
// pool, each writing to an ordered buffer, so the output is
// byte-identical to a sequential run. -parallel 1 additionally
// disables the classified snapshot index (implying -materialize) and
// restores the original sequential direct-classify pipeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"ixplight/internal/analysis"
	"ixplight/internal/ixpgen"
	"ixplight/internal/report"
	"ixplight/internal/telemetry"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, "+strings.Join(report.ExperimentNames, ", ")+")")
	scale := flag.Float64("scale", 0.05, "workload scale relative to the paper's magnitudes")
	seed := flag.Int64("seed", 42, "generation seed")
	ixps := flag.String("ixps", "big4", "comma-separated IXP names, 'big4' or 'all'")
	snapshotDir := flag.String("snapshots", "", "load snapshots from this directory instead of generating")
	outDir := flag.String("out", "", "also write each experiment's output to <out>/<name>.txt")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker budget for generation, analysis and experiments (1 = sequential direct-classify path)")
	materialize := flag.Bool("materialize", false,
		"decode full routes when loading -snapshots instead of indexing columnar files column-direct")
	noIncremental := flag.Bool("no-incremental", false,
		"reconstruct -snapshots delta chains through a materializing apply instead of advancing each day's index incrementally")
	tracePath := flag.String("trace", "", "write a trace ledger for the run to this file (inspect with tracecat)")
	flag.Parse()

	analysis.SetParallelism(*parallel)
	profiles, err := selectProfiles(*ixps)
	if err != nil {
		fatal(err)
	}
	lab, err := report.NewLabParallel(profiles, *seed, *scale, *parallel)
	if err != nil {
		fatal(err)
	}
	// With -trace, the whole run becomes one trace: an analyze.run root
	// span parents every report.experiment span (and, through
	// analysis.SetTelemetry, the index build/advance spans).
	var traceSink *telemetry.JSONLSink
	var rootSpan *telemetry.Span
	if *tracePath != "" {
		traceSink, err = telemetry.NewJSONLSink(*tracePath, 0)
		if err != nil {
			fatal(err)
		}
		reg := telemetry.New()
		reg.SetSpanSink(traceSink)
		analysis.SetTelemetry(reg)
		lab.Telemetry = reg
		lab.TraceCtx, rootSpan = telemetry.StartSpan(context.Background(), reg, "analyze.run")
		rootSpan.SetAttr("exp", *exp)
		rootSpan.SetAttrInt("parallel", int64(*parallel))
	}
	if *snapshotDir != "" {
		// -parallel 1 promises the original direct-classify pipeline,
		// which needs materialized routes to walk.
		lab.Materialize = *materialize || *parallel == 1
		lab.NoIncremental = *noIncremental
		if err := lab.LoadSnapshotDir(*snapshotDir); err != nil {
			fatal(err)
		}
	}

	names := report.ExperimentNames
	if *exp != "all" {
		names = strings.Split(*exp, ",")
		for i := range names {
			names[i] = strings.TrimSpace(names[i])
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	outs, runErr := lab.RunMany(names)
	if rootSpan != nil {
		if runErr != nil {
			rootSpan.SetAttr("error", runErr.Error())
		}
		rootSpan.End()
		if err := traceSink.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "analyze: trace ledger:", err)
		} else {
			fmt.Fprintln(os.Stderr, "analyze: trace ledger →", *tracePath)
		}
	}
	for i, out := range outs {
		os.Stdout.Write(out)
		if *outDir != "" {
			path := filepath.Join(*outDir, names[i]+".txt")
			if err := os.WriteFile(path, out, 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if runErr != nil {
		fatal(runErr)
	}
}

func selectProfiles(spec string) ([]ixpgen.Profile, error) {
	switch spec {
	case "big4":
		return ixpgen.BigFour(), nil
	case "all":
		return ixpgen.Profiles(), nil
	}
	var out []ixpgen.Profile
	for _, name := range strings.Split(spec, ",") {
		p := ixpgen.ProfileByName(strings.TrimSpace(name))
		if p == nil {
			return nil, fmt.Errorf("unknown IXP %q", name)
		}
		out = append(out, *p)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
