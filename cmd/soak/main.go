// Command soak runs the end-to-end chaos harness: N simulated IXPs on
// real sockets, crawled in parallel while servers are killed and
// restarted, responses corrupted and neighbors blacked out — all from
// a seeded, reproducible schedule — with the robustness invariants
// checked after every phase.
//
// Usage:
//
//	soak [-ixps 3] [-kills 2] [-rounds 1] [-seed 1] [-scale 0.004]
//	     [-parallel 4] [-timeout 5m] [-v] [-checks] [-trace path]
//
// Exit status is non-zero when any invariant fails. -v narrates the
// phases; -checks prints every individual verdict, not just failures.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ixplight/internal/soak"
)

func main() {
	cfg := soak.DefaultConfig()
	flag.IntVar(&cfg.IXPs, "ixps", cfg.IXPs, "simulated IXPs to run")
	flag.IntVar(&cfg.Kills, "kills", cfg.Kills, "servers killed and restarted mid-crawl per round")
	flag.IntVar(&cfg.Rounds, "rounds", cfg.Rounds, "chaos rounds (degrade, kill, resume)")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "chaos and workload seed (same seed, same run)")
	flag.Float64Var(&cfg.Scale, "scale", cfg.Scale, "workload scale")
	flag.IntVar(&cfg.NeighborParallelism, "parallel", cfg.NeighborParallelism, "neighbor crawl parallelism")
	flag.StringVar(&cfg.TracePath, "trace", "", "trace ledger path (default <tmpdir>/trace.jsonl, removed with the run directory)")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall run deadline")
	verbose := flag.Bool("v", false, "narrate phases")
	checks := flag.Bool("checks", false, "print every invariant verdict")
	flag.Parse()

	dir, err := os.MkdirTemp("", "ixplight-soak-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg.Dir = dir
	if *verbose {
		cfg.Logf = log.Printf
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	report, err := soak.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *checks {
		for _, c := range report.Checks {
			fmt.Println(c.String())
		}
	}
	failed := report.Failed()
	for _, c := range failed {
		fmt.Println(c.String())
	}
	passed := len(report.Checks) - len(failed)
	fmt.Printf("soak: %d IXPs, %d rounds, seed %d: %d/%d invariants green, %d requests, %v\n",
		cfg.IXPs, cfg.Rounds, cfg.Seed, passed, len(report.Checks),
		report.Requests, report.Duration.Round(time.Millisecond))
	for ixp, d := range report.Digests {
		fmt.Printf("  %s %s\n", d[:16], ixp)
	}
	if cfg.TracePath != "" {
		fmt.Printf("  trace ledger → %s\n", report.TracePath)
	}
	if len(failed) > 0 {
		os.Exit(1)
	}
}
