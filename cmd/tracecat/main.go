// Command tracecat inspects the trace ledgers ixplight commands write
// with -trace: it reconstructs the span forest (collect → neighbor →
// request), aggregates per-name latency, ranks the slowest subtrees,
// and attributes each crawl's wall time to the neighbor that
// dominated it — retries and backoff included.
//
// Usage:
//
//	tracecat [-tree] [-top 5] [-chrome out.json] trace.jsonl
//
// The default output is the analysis: a one-line summary, per-name
// latency aggregates (count, p50, p95, max), the top-N slowest
// subtrees and the critical path of the slowest trace. -tree
// additionally prints every span as an indented tree. -chrome exports
// the ledger as a Chrome trace_event file loadable in Perfetto or
// chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ixplight/internal/telemetry"
)

func main() {
	tree := flag.Bool("tree", false, "print the full span tree")
	top := flag.Int("top", 5, "slowest subtrees to list (0 = skip)")
	chrome := flag.String("chrome", "", "also export a Chrome trace_event file (Perfetto-loadable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecat [-tree] [-top N] [-chrome out.json] <trace.jsonl>")
		os.Exit(2)
	}
	led, err := telemetry.ReadLedger(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if len(led.Spans) == 0 {
		fmt.Println("trace ledger is empty")
		return
	}
	forest := buildForest(led.Spans)

	traces := map[string]bool{}
	for i := range led.Spans {
		traces[led.Spans[i].Trace] = true
	}
	fmt.Printf("%s: %d spans, %d traces, %d roots, wall %v\n",
		flag.Arg(0), len(led.Spans), len(traces), len(forest), wall(led.Spans).Round(time.Millisecond))

	if *tree {
		fmt.Println()
		for _, root := range forest {
			printTree(root, 0)
		}
	}

	fmt.Println()
	printAggregates(led.Spans)

	if *top > 0 {
		fmt.Println()
		printSlowest(forest, *top)
	}

	fmt.Println()
	printCriticalPath(forest)

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fatal(err)
		}
		if err := telemetry.WriteChromeTrace(f, led.Spans); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nchrome trace → %s (open in Perfetto or chrome://tracing)\n", *chrome)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecat:", err)
	os.Exit(1)
}

// node is one span in the reconstructed forest.
type node struct {
	rec  *telemetry.SpanRecord
	kids []*node
}

// buildForest links spans into trees by ParentID. Spans whose parent
// never reached the ledger (dropped by the size cap, or a crawl cut
// mid-span) are promoted to roots so nothing disappears. Roots are
// ordered by start time, children likewise.
func buildForest(spans []telemetry.SpanRecord) []*node {
	byID := make(map[string]*node, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &node{rec: &spans[i]}
	}
	var roots []*node
	for i := range spans {
		n := byID[spans[i].ID]
		if p, ok := byID[spans[i].Parent]; ok && spans[i].Parent != "" {
			p.kids = append(p.kids, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range byID {
		sortNodes(n.kids)
	}
	return roots
}

func sortNodes(ns []*node) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].rec.Start != ns[j].rec.Start {
			return ns[i].rec.Start < ns[j].rec.Start
		}
		return ns[i].rec.ID < ns[j].rec.ID
	})
}

// wall is the ledger's total covered wall time: latest end minus
// earliest start across all spans.
func wall(spans []telemetry.SpanRecord) time.Duration {
	lo, hi := spans[0].Start, spans[0].End
	for i := range spans {
		if spans[i].Start < lo {
			lo = spans[i].Start
		}
		if spans[i].End > hi {
			hi = spans[i].End
		}
	}
	return time.Duration(hi - lo)
}

// label renders one span's display line: name, duration, and its
// most telling attributes.
func label(r *telemetry.SpanRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %v", r.Name, r.Duration().Round(time.Microsecond))
	var attrs []string
	for _, a := range r.Attrs {
		attrs = append(attrs, a.Key+"="+a.Value)
	}
	if len(attrs) > 0 {
		fmt.Fprintf(&b, " [%s]", strings.Join(attrs, " "))
	}
	if n := len(r.Events); n > 0 {
		fmt.Fprintf(&b, " (%d events)", n)
	}
	return b.String()
}

func printTree(n *node, depth int) {
	fmt.Printf("%s%s\n", strings.Repeat("  ", depth), label(n.rec))
	for _, k := range n.kids {
		printTree(k, depth+1)
	}
}

// printAggregates groups spans by name and prints count/p50/p95/max.
func printAggregates(spans []telemetry.SpanRecord) {
	byName := map[string][]time.Duration{}
	for i := range spans {
		byName[spans[i].Name] = append(byName[spans[i].Name], spans[i].Duration())
	}
	names := make([]string, 0, len(byName))
	w := len("span")
	for name := range byName {
		names = append(names, name)
		if len(name) > w {
			w = len(name)
		}
	}
	sort.Strings(names)
	fmt.Printf("%-*s  %7s  %10s  %10s  %10s  %10s\n", w, "span", "count", "p50", "p95", "max", "total")
	for _, name := range names {
		ds := byName[name]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var total time.Duration
		for _, d := range ds {
			total += d
		}
		fmt.Printf("%-*s  %7d  %10v  %10v  %10v  %10v\n", w, name, len(ds),
			percentile(ds, 50).Round(time.Microsecond),
			percentile(ds, 95).Round(time.Microsecond),
			ds[len(ds)-1].Round(time.Microsecond),
			total.Round(time.Microsecond))
	}
}

// percentile is the nearest-rank percentile of an ascending-sorted
// slice.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// printSlowest ranks every subtree (span + descendants, whose wall
// time the span's own duration bounds) and lists the slowest n,
// with the path from the root so a span is locatable in the tree.
func printSlowest(forest []*node, n int) {
	type entry struct {
		n    *node
		path string
	}
	var all []entry
	var walk func(nd *node, prefix string)
	walk = func(nd *node, prefix string) {
		p := nd.rec.Name
		if prefix != "" {
			p = prefix + " › " + nd.rec.Name
		}
		all = append(all, entry{nd, p})
		for _, k := range nd.kids {
			walk(k, p)
		}
	}
	for _, root := range forest {
		walk(root, "")
	}
	sort.Slice(all, func(i, j int) bool {
		if d1, d2 := all[i].n.rec.Duration(), all[j].n.rec.Duration(); d1 != d2 {
			return d1 > d2
		}
		return all[i].n.rec.ID < all[j].n.rec.ID
	})
	if n > len(all) {
		n = len(all)
	}
	fmt.Printf("slowest %d subtrees:\n", n)
	for _, e := range all[:n] {
		extra := ""
		if asn := e.n.rec.Attr("asn"); asn != "" {
			extra = " asn=" + asn
		} else if ph := e.n.rec.Attr("phase"); ph != "" {
			extra = " phase=" + ph
		} else if p := e.n.rec.Attr("path"); p != "" {
			extra = " path=" + p
		}
		fmt.Printf("  %10v  %s (%d spans)%s\n",
			e.n.rec.Duration().Round(time.Microsecond), e.path, subtreeSize(e.n), extra)
	}
}

func subtreeSize(n *node) int {
	total := 1
	for _, k := range n.kids {
		total += subtreeSize(k)
	}
	return total
}

// printCriticalPath walks the slowest root trace, descending into the
// longest child at every level, then attributes each crawl's wall
// time to its dominant neighbor.
func printCriticalPath(forest []*node) {
	if len(forest) == 0 {
		return
	}
	slowest := forest[0]
	for _, root := range forest {
		if root.rec.Duration() > slowest.rec.Duration() {
			slowest = root
		}
	}
	fmt.Printf("critical path (trace %s, %v):\n",
		slowest.rec.Trace, slowest.rec.Duration().Round(time.Microsecond))
	n, depth := slowest, 0
	var parentDur time.Duration
	for {
		share := ""
		if depth > 0 && parentDur > 0 {
			share = fmt.Sprintf(" (%.0f%% of parent)", 100*float64(n.rec.Duration())/float64(parentDur))
		}
		fmt.Printf("  %s%s%s\n", strings.Repeat("  ", depth), label(n.rec), share)
		if len(n.kids) == 0 {
			break
		}
		longest := n.kids[0]
		for _, k := range n.kids {
			if k.rec.Duration() > longest.rec.Duration() {
				longest = k
			}
		}
		parentDur = n.rec.Duration()
		n, depth = longest, depth+1
	}
	attributeCrawls(forest)
}

// attributeCrawls names, for every collector.collect span in the
// forest, the neighbor whose subtree dominated the crawl's wall time,
// with its retry count and accumulated backoff.
func attributeCrawls(forest []*node) {
	var collects []*node
	var walk func(n *node)
	walk = func(n *node) {
		if n.rec.Name == "collector.collect" {
			collects = append(collects, n)
		}
		for _, k := range n.kids {
			walk(k)
		}
	}
	for _, root := range forest {
		walk(root)
	}
	for _, c := range collects {
		var worst *node
		for _, k := range c.kids {
			if k.rec.Name != "collector.neighbor" {
				continue
			}
			if worst == nil || k.rec.Duration() > worst.rec.Duration() {
				worst = k
			}
		}
		if worst == nil {
			continue
		}
		retries, backoff := retryCost(worst)
		ixp := c.rec.Attr("ixp")
		if ixp == "" {
			ixp = "crawl"
		}
		pct := 0.0
		if d := c.rec.Duration(); d > 0 {
			pct = 100 * float64(worst.rec.Duration()) / float64(d)
		}
		fmt.Printf("%s wall time dominated by neighbor AS%s: %v of %v (%.0f%%), %d retries, %v backoff\n",
			ixp, worst.rec.Attr("asn"),
			worst.rec.Duration().Round(time.Microsecond),
			c.rec.Duration().Round(time.Microsecond), pct,
			retries, backoff.Round(time.Microsecond))
	}
}

// retryCost sums the retries and retry backoff recorded by the
// lg.request spans inside a subtree: attempts beyond the first count
// as retries, and the retry_wait attribute accumulates the backoff
// the client actually slept.
func retryCost(n *node) (retries int, backoff time.Duration) {
	if n.rec.Name == "lg.request" {
		if a := n.rec.Attr("attempts"); a != "" {
			if v, err := strconv.Atoi(a); err == nil && v > 1 {
				retries += v - 1
			}
		}
		if w := n.rec.Attr("retry_wait"); w != "" {
			if d, err := time.ParseDuration(w); err == nil {
				backoff += d
			}
		}
	}
	for _, k := range n.kids {
		r, b := retryCost(k)
		retries += r
		backoff += b
	}
	return retries, backoff
}
