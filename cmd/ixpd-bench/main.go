// Command ixpd-bench load-tests an ixpd daemon through the three
// phases its serving pipeline is engineered around:
//
//	cold  — every distinct query computed for the first time
//	warm  — identical queries answered from the pre-marshaled cache
//	etag  — If-None-Match revalidation, answered 304 with zero recompute
//
// Usage:
//
//	ixpd-bench [-url http://127.0.0.1:8080] [-c 8] [-n 2000] [-q 64]
//	           [-seed 42] [-mix experiments:4,as:3,community:2,series:1,meta:1]
//	           [-json]
//
// The query universe is derived from the daemon's /v1/meta samples
// and fully determined by -seed, so two runs against the same dataset
// issue identical request streams. Cold numbers are only cold against
// a freshly started daemon.
//
// Without -url it self-hosts: an in-process daemon over the synthetic
// lab (-ixps/-scale/-seed-data) on an ephemeral loopback port, so the
// full cold/warm/etag story runs from one command with no setup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"ixplight/internal/ixpd"
	"ixplight/internal/ixpgen"
)

func main() {
	url := flag.String("url", "", "daemon base URL (empty = self-host a synthetic daemon)")
	concurrency := flag.Int("c", 8, "concurrent load workers")
	requests := flag.Int("n", 2000, "requests per warm/etag phase")
	queries := flag.Int("q", 64, "distinct query universe size")
	seed := flag.Int64("seed", 42, "query mix seed")
	mix := flag.String("mix", "", "endpoint class weights (default experiments:4,as:3,community:2,series:1,meta:1)")
	ixps := flag.String("ixps", "DE-CIX,AMS-IX", "self-host: IXP profiles (big4, all, or names)")
	scale := flag.Float64("scale", 0.01, "self-host: synthetic workload scale")
	seedData := flag.Int64("seed-data", 42, "self-host: synthetic generation seed")
	asJSON := flag.Bool("json", false, "emit the full result as JSON")
	flag.Parse()

	base := *url
	if base == "" {
		profiles, err := selectProfiles(*ixps)
		if err != nil {
			fatal(err)
		}
		srv := ixpd.New(ixpd.Config{
			Profiles:       profiles,
			Seed:           *seedData,
			Scale:          *scale,
			ReloadInterval: -1,
		})
		t0 := time.Now()
		if err := srv.Load(); err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "self-hosted daemon on %s (loaded in %v)\n", base, time.Since(t0).Round(time.Millisecond))
	}

	res, err := ixpd.RunLoad(ixpd.LoadOptions{
		BaseURL:     base,
		Concurrency: *concurrency,
		Requests:    *requests,
		Queries:     *queries,
		Seed:        *seed,
		Mix:         *mix,
	})
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("%d distinct queries, %d workers\n", res.Queries, *concurrency)
		fmt.Printf("%-6s %9s %9s %8s %10s %10s %10s\n", "phase", "requests", "errors", "qps", "p50", "p95", "p99")
		for _, p := range res.Phases {
			fmt.Printf("%-6s %9d %9d %8.0f %10v %10v %10v\n",
				p.Phase, p.Requests, p.Errors, p.QPS,
				p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond), p.P99.Round(time.Microsecond))
		}
	}
	for _, p := range res.Phases {
		if p.Errors > 0 {
			fatal(fmt.Errorf("phase %s: %d errors", p.Phase, p.Errors))
		}
	}
}

func selectProfiles(spec string) ([]ixpgen.Profile, error) {
	switch spec {
	case "big4":
		return ixpgen.BigFour(), nil
	case "all":
		return ixpgen.Profiles(), nil
	}
	var out []ixpgen.Profile
	for _, name := range strings.Split(spec, ",") {
		p := ixpgen.ProfileByName(strings.TrimSpace(name))
		if p == nil {
			return nil, fmt.Errorf("unknown IXP %q", name)
		}
		out = append(out, *p)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ixpd-bench:", err)
	os.Exit(1)
}
