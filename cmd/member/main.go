// Command member is a stand-alone IXP member: it opens a BGP session
// to a route server (e.g. lg-server -bgp :1790) and announces routes
// tagged with the action communities you specify, then holds the
// session with keepalives so the routes stay visible in the LG.
//
// Usage:
//
//	member -connect localhost:1790 -asn 64512 -routes 5 \
//	       -communities 0:15169,6695:6695 [-withdraw-after 30s]
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"time"

	"ixplight/internal/bgp"
	"ixplight/internal/bgp/session"
	"ixplight/internal/netutil"
)

func main() {
	connect := flag.String("connect", "localhost:1790", "route server BGP address")
	asn := flag.Uint("asn", 64512, "our AS number")
	nRoutes := flag.Int("routes", 3, "number of IPv4 routes to announce")
	commSpec := flag.String("communities", "", "comma-separated communities to tag every route with")
	prefixBase := flag.Int("prefix-base", 5000, "first synthetic /24 index to announce")
	withdrawAfter := flag.Duration("withdraw-after", 0, "withdraw everything after this delay (0 = never)")
	flag.Parse()

	comms, err := parseCommunities(*commSpec)
	if err != nil {
		log.Fatal(err)
	}

	conn, err := net.Dial("tcp", *connect)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := session.Establish(conn, session.Config{
		ASN:      uint32(*asn),
		RouterID: netip.MustParseAddr("10.99.0.1"),
		IPv4:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	log.Printf("session established with AS%d (hold time %v)", sess.PeerASN(), sess.HoldTime())

	var prefixes []netip.Prefix
	for i := 0; i < *nRoutes; i++ {
		r := bgp.Route{
			Prefix:      netutil.SyntheticV4Prefix(*prefixBase + i),
			NextHop:     netutil.PeerAddrV4(int(*asn % 1000)),
			ASPath:      bgp.ASPath{uint32(*asn)},
			Origin:      bgp.OriginIGP,
			Communities: comms,
		}
		if err := sess.SendRoute(r); err != nil {
			log.Fatal(err)
		}
		prefixes = append(prefixes, r.Prefix)
		log.Printf("announced %s with %d communities", r.Prefix, len(comms))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go sess.RunKeepalives(ctx)

	if *withdrawAfter > 0 {
		select {
		case <-time.After(*withdrawAfter):
			for _, p := range prefixes {
				if err := sess.SendWithdraw(p); err != nil {
					log.Fatal(err)
				}
				log.Printf("withdrew %s", p)
			}
		case <-ctx.Done():
		}
	}
	<-ctx.Done()
	log.Println("closing session")
}

func parseCommunities(spec string) ([]bgp.Community, error) {
	if spec == "" {
		return nil, nil
	}
	var out []bgp.Community
	for _, s := range strings.Split(spec, ",") {
		c, err := bgp.ParseCommunity(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
