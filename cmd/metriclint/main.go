// Command metriclint enforces the repo's metric naming rule: every
// metric family registered on a telemetry.Registry must be named by a
// string literal matching ^ixplight_[a-z_]+$ — lowercase, underscore
// separated, and carrying the module prefix so dashboards can glob
// ixplight_* across binaries.
//
// It also enforces the span naming rule: every trace span started by
// a string literal passed to StartSpan (or a package's startSpan
// helper) must match ^[a-z_]+(\.[a-z_]+)*$ — lowercase words joined
// by dots, the dot separating hierarchy levels (collector.neighbor,
// lg.request), so tracecat aggregates and ledger greps stay
// predictable.
//
// It walks every non-test Go file, finds calls to the registry
// constructors (Counter, CounterVec, Gauge, GaugeVec, Histogram,
// HistogramVec) and span starters and checks their name argument.
// Exit status 1 when any name violates a rule; the offending
// file:line is printed. Run via `make vet`.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

var namePattern = regexp.MustCompile(`^ixplight_[a-z_]+$`)

// spanPattern is the span naming rule: lowercase words joined by
// dots, each dot one hierarchy level.
var spanPattern = regexp.MustCompile(`^[a-z_]+(\.[a-z_]+)*$`)

// spanStarters are the functions whose first string-literal argument
// is a span name: the package-level telemetry.StartSpan(ctx, reg,
// name), the explicit-root Registry.StartSpan(name), and the nil-safe
// startSpan(ctx, name) helpers the instrumented packages define.
var spanStarters = map[string]bool{
	"StartSpan": true,
	"startSpan": true,
}

// constructors are the telemetry.Registry methods whose first argument
// is a metric family name.
var constructors = map[string]bool{
	"Counter":      true,
	"CounterVec":   true,
	"Gauge":        true,
	"GaugeVec":     true,
	"Histogram":    true,
	"HistogramVec": true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	fset := token.NewFileSet()
	violations := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if spanStarters[sel.Sel.Name] {
				// The span name is the first string literal: the leading
				// ctx and registry arguments never are.
				for _, arg := range call.Args {
					lit, ok := arg.(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					name, err := strconv.Unquote(lit.Value)
					if err == nil && !spanPattern.MatchString(name) {
						fmt.Fprintf(os.Stderr, "%s: span name %q does not match %s\n",
							fset.Position(lit.Pos()), name, spanPattern)
						violations++
					}
					break
				}
				return true
			}
			if !constructors[sel.Sel.Name] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				// Dynamic names go through SanitizeName at registration;
				// the lint covers the static catalog.
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || namePattern.MatchString(name) {
				return true
			}
			fmt.Fprintf(os.Stderr, "%s: metric name %q does not match %s\n",
				fset.Position(lit.Pos()), name, namePattern)
			violations++
			return true
		})
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "metriclint: %d violation(s)\n", violations)
		os.Exit(1)
	}
}
