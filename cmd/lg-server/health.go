package main

import (
	"fmt"
	"net/http"
	"sync/atomic"
)

// mountHealth wraps the LG handler with the health pair. The probes
// sit outside the instrumented (and chaos-injected) chain: a liveness
// check must not count against the request totals the soak harness
// reconciles, and -flaky must never fail a probe.
//
//	/healthz — liveness: the process is up and serving.
//	/readyz  — readiness: the workload is populated and the listener
//	           is bound; 503 while starting.
func mountHealth(next http.Handler, ready *atomic.Bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"starting"}`)
			return
		}
		fmt.Fprintln(w, `{"status":"ready"}`)
	})
	mux.Handle("/", next)
	return mux
}
