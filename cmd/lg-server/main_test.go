package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMountHealth(t *testing.T) {
	var ready atomic.Bool
	var passedThrough atomic.Int64
	next := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		passedThrough.Add(1)
		w.WriteHeader(http.StatusTeapot)
	})
	h := mountHealth(next, &ready)

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code, rec.Body.String()
	}

	// Liveness holds before readiness does.
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("/readyz before ready: %d %q", code, body)
	}
	ready.Store(true)
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz after ready: %d %q", code, body)
	}

	// The probes never reach the wrapped LG handler; everything else
	// does.
	if passedThrough.Load() != 0 {
		t.Fatalf("probe requests leaked into the LG handler")
	}
	if code, _ := get("/api/v1/lg"); code != http.StatusTeapot {
		t.Fatalf("passthrough: %d, want the wrapped handler's code", code)
	}
	if passedThrough.Load() != 1 {
		t.Fatalf("passthrough count %d, want 1", passedThrough.Load())
	}
}
