// Command lg-server runs a looking glass over a synthetic IXP route
// server — a local stand-in for lg.de-cix.net and friends.
//
// Usage:
//
//	lg-server [-ixp DE-CIX] [-addr :8080] [-scale 0.02] [-seed 42]
//	          [-flaky 0.0] [-admin] [-bgp :1790] [-metrics-addr :9100]
//	          [-drain 5s] [-trace file]
//
// With -bgp it additionally accepts real BGP sessions on that address:
// peers that establish a session and announce routes appear in the LG
// output alongside the synthetic members. With -metrics-addr it serves
// the operational surface on a second listener: /metrics (Prometheus
// text format), /debug/vars (expvar JSON) and /debug/pprof/. With
// -admin it mounts /admin/flaky, the runtime failure-injection control
// the soak harness uses to flip chaos on and off mid-crawl.
//
// /healthz (liveness) and /readyz (readiness: workload populated and
// listener bound) are always mounted, outside both the chaos switch
// and the request instrumentation.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight LG
// requests drain (up to -drain), the BGP and telemetry listeners
// close, and a final telemetry summary is logged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ixplight/internal/analysis"
	"ixplight/internal/bgp"
	"ixplight/internal/bgp/session"
	"ixplight/internal/collector"
	"ixplight/internal/ixpgen"
	"ixplight/internal/lg"
	"ixplight/internal/netutil"
	"ixplight/internal/rs"
	"ixplight/internal/telemetry"
)

func main() {
	ixp := flag.String("ixp", "DE-CIX", "IXP profile to simulate")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	scale := flag.Float64("scale", 0.02, "workload scale")
	seed := flag.Int64("seed", 42, "generation seed")
	flaky := flag.Float64("flaky", 0, "probability of injected 500 responses")
	admin := flag.Bool("admin", false, "mount /admin/flaky for runtime failure injection control")
	bgpAddr := flag.String("bgp", "", "optional BGP listen address (e.g. :1790)")
	metricsAddr := flag.String("metrics-addr", "", "optional telemetry listen address serving /metrics, /debug/vars and /debug/pprof (e.g. :9100)")
	tracePath := flag.String("trace", "", "write a trace ledger to this file: one root span per served LG request")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown deadline for in-flight requests")
	flag.Parse()

	profile := ixpgen.ProfileByName(*ixp)
	if profile == nil {
		log.Fatalf("unknown IXP %q", *ixp)
	}
	server, err := rs.New(rs.Config{
		Scheme:       profile.Scheme,
		MaxPathLen:   64,
		ScrubActions: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	w, err := ixpgen.Generate(*profile, ixpgen.Options{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Populate(server); err != nil {
		log.Fatal(err)
	}
	st := server.Stats()
	log.Printf("%s: %d/%d members, %d/%d routes (v4/v6)",
		st.IXP, st.MembersV4, st.MembersV6, st.RoutesV4, st.RoutesV6)

	// The shutdown signal fans out to every subsystem: the BGP accept
	// loop, its sessions, and the HTTP drains below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var bgpLn net.Listener
	if *bgpAddr != "" {
		bgpLn, err = net.Listen("tcp", *bgpAddr)
		if err != nil {
			log.Fatalf("bgp listen: %v", err)
		}
		go serveBGP(ctx, bgpLn, server, profile)
	}

	// The flaky switch is always in the chain (inactive options pass
	// straight through) so -admin can arm failure injection at runtime
	// even when the process started healthy.
	fs := lg.NewFlakySwitch(lg.NewServer(server), lg.FlakyOptions{ErrorRate: *flaky, Seed: *seed})
	var handler http.Handler = fs

	var reg *telemetry.Registry
	var telSrv *http.Server
	var traceSink *telemetry.JSONLSink
	if *metricsAddr != "" || *tracePath != "" {
		reg = telemetry.New()
		// Register the whole pipeline's metric catalog, not just the
		// server's own families: a scrape of a freshly started process
		// shows every ixplight_{lg,collector,analysis,lg_server}_* family
		// this binary (or a collector pointed at it) can ever emit.
		lg.NewMetrics(reg)
		collector.NewMetrics(reg)
		analysis.SetTelemetry(reg)
		handler = instrument(reg, handler)
	}
	if *tracePath != "" {
		traceSink, err = telemetry.NewJSONLSink(*tracePath, 0)
		if err != nil {
			log.Fatal(err)
		}
		reg.SetSpanSink(traceSink)
		handler = traceRequests(reg, handler)
		log.Printf("tracing requests → %s", *tracePath)
	}
	if *metricsAddr != "" {
		telSrv = &http.Server{Addr: *metricsAddr, Handler: reg.Handler()}
		go func() {
			log.Printf("telemetry on %s (/metrics, /debug/vars, /debug/pprof)", *metricsAddr)
			if err := telSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("telemetry listener: %v", err)
			}
		}()
	}
	if *admin {
		// Admin traffic bypasses instrumentation: chaos control must
		// not perturb the request counters the soak harness reconciles.
		mux := http.NewServeMux()
		mux.Handle("/admin/", lg.AdminHandler(fs))
		mux.Handle("/", handler)
		handler = mux
		log.Printf("admin endpoint on %s/admin/flaky", *addr)
	}

	// Health probes mount outermost — like /admin, they bypass chaos
	// and instrumentation. Readiness flips once the listener is bound
	// (the workload populated above), so an orchestrator can tell
	// "starting" from "serving".
	var ready atomic.Bool
	handler = mountHealth(handler, &ready)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	ready.Store(true)

	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() {
		log.Printf("looking glass for %s on %s", *ixp, ln.Addr())
		errc <- srv.Serve(ln)
	}()

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight LG requests finish
	// (bounded by -drain), then tear the side listeners down.
	log.Printf("shutting down (drain %v)", *drain)
	stop()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if bgpLn != nil {
		bgpLn.Close()
	}
	if telSrv != nil {
		telSrv.Close()
	}
	if traceSink != nil {
		if err := traceSink.Close(); err != nil {
			log.Printf("trace ledger: %v", err)
		} else {
			log.Printf("trace ledger → %s", *tracePath)
		}
	}
	if reg != nil {
		logTelemetrySummary(reg)
	}
	log.Print("bye")
}

// logTelemetrySummary flushes a final one-line account of the served
// traffic so a soak run's logs end with the numbers it reconciles.
func logTelemetrySummary(reg *telemetry.Registry) {
	var total, errs int64
	for name, v := range reg.Snapshot() {
		if !strings.HasPrefix(name, "ixplight_lg_server_requests_total") {
			continue
		}
		n, ok := v.(int64)
		if !ok {
			continue
		}
		total += n
		if strings.Contains(name, `code="5`) || strings.Contains(name, `code="4`) {
			errs += n
		}
	}
	log.Printf("final telemetry: %d requests served, %d non-2xx", total, errs)
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// traceRequests wraps the LG handler so every served request becomes
// a root span in the trace ledger (server-side counterpart of the
// client's lg.request spans).
func traceRequests(reg *telemetry.Registry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, sp := telemetry.StartSpan(r.Context(), reg, "lg_server.request")
		if sp == nil {
			next.ServeHTTP(w, r)
			return
		}
		sp.SetAttr("path", r.URL.Path)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r.WithContext(ctx))
		sp.SetAttrInt("code", int64(rec.code))
		sp.End()
	})
}

// instrument wraps the LG handler with server-side request metrics.
func instrument(reg *telemetry.Registry, next http.Handler) http.Handler {
	requests := reg.CounterVec("ixplight_lg_server_requests_total",
		"LG HTTP requests served, by status code.", "code")
	seconds := reg.Histogram("ixplight_lg_server_request_seconds",
		"LG HTTP request handling time.", nil)
	inFlight := reg.Gauge("ixplight_lg_server_in_flight",
		"LG HTTP requests currently being handled.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inFlight.Inc()
		defer inFlight.Dec()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(rec, r)
		seconds.ObserveSince(t0)
		requests.With(strconv.Itoa(rec.code)).Inc()
	})
}

// serveBGP accepts member BGP sessions and feeds announcements into
// the route server. It returns when the listener closes; sessions end
// when ctx is cancelled.
func serveBGP(ctx context.Context, ln net.Listener, server *rs.Server, profile *ixpgen.Profile) {
	log.Printf("BGP listener on %s (RS ASN %d)", ln.Addr(), profile.Scheme.RSASN)
	cfg := session.Config{
		ASN:      uint32(profile.Scheme.RSASN),
		RouterID: netip.MustParseAddr("192.0.2.1"),
		IPv4:     true,
		IPv6:     true,
	}
	next := 60000 // address index for dynamically joining peers
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() == nil {
				log.Printf("bgp accept: %v", err)
			}
			return
		}
		idx := next
		next++
		go func(c net.Conn, idx int) {
			err := session.ServeConn(ctx, c, cfg, func(peer uint32, u *bgp.Update) error {
				if !server.HasPeer(peer) {
					if err := server.AddPeer(rs.Peer{
						ASN:    peer,
						Name:   fmt.Sprintf("bgp-peer-%d", peer),
						AddrV4: netutil.PeerAddrV4(idx),
						AddrV6: netutil.PeerAddrV6(idx),
						IPv4:   true,
						IPv6:   true,
					}); err != nil {
						return err
					}
					log.Printf("new BGP peer AS%d", peer)
				}
				for _, prefix := range u.Withdrawn {
					server.Withdraw(peer, prefix)
				}
				for _, r := range u.Routes() {
					if reason, err := server.Announce(peer, r); err != nil {
						return err
					} else if reason != rs.FilterNone {
						log.Printf("AS%d: %s filtered: %v", peer, r.Prefix, reason)
					}
				}
				return nil
			})
			if err != nil && ctx.Err() == nil {
				log.Printf("bgp session: %v", err)
			}
		}(conn, idx)
	}
}
