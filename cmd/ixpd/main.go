// Command ixpd runs the warm-index analysis daemon: it loads a
// snapshot/delta dataset once (or generates the calibrated synthetic
// lab), keeps the classified indexes warm, and serves the paper's
// experiments plus per-AS, per-community and time-series lookups as
// JSON over HTTP.
//
// Usage:
//
//	ixpd [-addr :8080] [-snapshots DIR] [-ixps big4] [-scale 0.02]
//	     [-seed 42] [-parallel 0] [-materialize] [-no-incremental]
//	     [-max-inflight 0] [-request-timeout 15s] [-reload-interval 5s]
//	     [-cache-cap 512] [-metrics-addr :9100] [-trace file]
//	     [-drain 5s] [-smoke]
//
// With -snapshots the dataset directory is loaded through the delta-
// chain-aware loader and polled every -reload-interval: a new
// collection day landing in the directory swaps in a fresh dataset
// generation without dropping in-flight requests. Without it the
// daemon serves the synthetic lab derived from -ixps/-seed/-scale.
//
// Responses carry strong ETags derived from the dataset digest;
// clients that revalidate with If-None-Match get 304s with zero
// recompute. Identical concurrent cold queries are coalesced into one
// computation. With -metrics-addr a second listener serves /metrics,
// /debug/vars and /debug/pprof/.
//
// -smoke runs a self-contained end-to-end check on ephemeral ports —
// readiness, one experiment fetch, a 304 revalidation, a /metrics
// scrape — and exits 0 on success. `make ixpd-smoke` wires it into
// `make check`.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ixplight/internal/analysis"
	"ixplight/internal/ixpd"
	"ixplight/internal/ixpgen"
	"ixplight/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	snapshots := flag.String("snapshots", "", "snapshot dataset directory (empty = synthetic lab)")
	ixps := flag.String("ixps", "big4", "IXP profiles: big4, all, or comma-separated names")
	scale := flag.Float64("scale", 0.02, "synthetic workload scale")
	seed := flag.Int64("seed", 42, "synthetic generation seed")
	parallel := flag.Int("parallel", 0, "load/experiment worker bound (0 = GOMAXPROCS)")
	materialize := flag.Bool("materialize", false, "materialize delta-chain days as full snapshots")
	noIncremental := flag.Bool("no-incremental", false, "disable incremental delta-chain index maintenance")
	maxInFlight := flag.Int("max-inflight", 0, "concurrent response computations (0 = 2×GOMAXPROCS)")
	requestTimeout := flag.Duration("request-timeout", 15*time.Second, "per-request compute admission/wait deadline")
	reloadInterval := flag.Duration("reload-interval", 5*time.Second, "dataset directory poll period (negative disables)")
	cacheCap := flag.Int("cache-cap", 512, "pre-marshaled response cache entries per generation")
	metricsAddr := flag.String("metrics-addr", "", "optional telemetry listen address serving /metrics, /debug/vars and /debug/pprof (e.g. :9100)")
	tracePath := flag.String("trace", "", "write a trace ledger to this file: one root span per served request")
	drain := flag.Duration("drain", 5*time.Second, "graceful shutdown deadline for in-flight requests")
	smoke := flag.Bool("smoke", false, "run the self-contained smoke check on ephemeral ports and exit")
	flag.Parse()

	profiles, err := selectProfiles(*ixps)
	if err != nil {
		fatal(err)
	}

	// The registry is always on for ixpd: the daemon's whole point is
	// observable serving, and the registry is cheap when unscraped.
	reg := telemetry.New()
	analysis.SetTelemetry(reg)

	cfg := ixpd.Config{
		Profiles:       profiles,
		SnapshotDir:    *snapshots,
		Seed:           *seed,
		Scale:          *scale,
		Parallel:       *parallel,
		Materialize:    *materialize,
		NoIncremental:  *noIncremental,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *requestTimeout,
		ReloadInterval: *reloadInterval,
		CacheCap:       *cacheCap,
		Telemetry:      reg,
		Logf:           log.Printf,
	}

	if *smoke {
		if err := runSmoke(cfg, reg); err != nil {
			fatal(err)
		}
		fmt.Println("ixpd smoke: ok")
		return
	}

	var traceSink *telemetry.JSONLSink
	if *tracePath != "" {
		traceSink, err = telemetry.NewJSONLSink(*tracePath, 0)
		if err != nil {
			fatal(err)
		}
		reg.SetSpanSink(traceSink)
		log.Printf("tracing requests → %s", *tracePath)
	}

	srv := ixpd.New(cfg)

	// Bind before the (potentially long) dataset load so probes can
	// distinguish "starting" (connection refused → retry) from
	// "loading" (/readyz 503) from "serving" (/readyz 200).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var telSrv *http.Server
	if *metricsAddr != "" {
		telSrv = &http.Server{Addr: *metricsAddr, Handler: reg.Handler()}
		go func() {
			log.Printf("telemetry on %s (/metrics, /debug/vars, /debug/pprof)", *metricsAddr)
			if err := telSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("telemetry listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("ixpd API on %s", ln.Addr())
		errc <- httpSrv.Serve(ln)
	}()

	t0 := time.Now()
	if err := srv.Load(); err != nil {
		fatal(err)
	}
	gen, digest := srv.Generation()
	log.Printf("dataset ready in %v (generation %d, digest %s)", time.Since(t0).Round(time.Millisecond), gen, digest)
	go srv.WatchReload(ctx)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}

	log.Printf("shutting down (drain %v)", *drain)
	stop()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if telSrv != nil {
		telSrv.Close()
	}
	if traceSink != nil {
		if err := traceSink.Close(); err != nil {
			log.Printf("trace ledger: %v", err)
		} else {
			log.Printf("trace ledger → %s", *tracePath)
		}
	}
	log.Print("bye")
}

// runSmoke exercises the daemon end to end on ephemeral loopback
// ports: readiness gating, one experiment fetch with an ETag, a 304
// revalidation of the same query, and a /metrics scrape that must
// show the served requests.
func runSmoke(cfg ixpd.Config, reg *telemetry.Registry) error {
	cfg.ReloadInterval = -1 // nothing to watch in a smoke run
	srv := ixpd.New(cfg)

	apiLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	metLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	apiSrv := &http.Server{Handler: srv.Handler()}
	metSrv := &http.Server{Handler: reg.Handler()}
	go apiSrv.Serve(apiLn)
	go metSrv.Serve(metLn)
	defer apiSrv.Close()
	defer metSrv.Close()
	base := "http://" + apiLn.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	// Before the dataset loads, readiness must say so.
	if code, _, _, err := get(client, base+"/readyz", ""); err != nil {
		return err
	} else if code != http.StatusServiceUnavailable {
		return fmt.Errorf("pre-load /readyz: got %d, want 503", code)
	}
	if err := srv.Load(); err != nil {
		return err
	}
	if code, _, _, err := get(client, base+"/readyz", ""); err != nil {
		return err
	} else if code != http.StatusOK {
		return fmt.Errorf("post-load /readyz: got %d, want 200", code)
	}

	// One experiment, cold: 200 with a strong ETag and a real body.
	code, etag, body, err := get(client, base+"/v1/experiments/summary", "")
	if err != nil {
		return err
	}
	if code != http.StatusOK || etag == "" || !strings.Contains(body, `"output"`) {
		return fmt.Errorf("experiment fetch: code %d etag %q", code, etag)
	}

	// The same query revalidated: 304, no body.
	code, _, body, err = get(client, base+"/v1/experiments/summary", etag)
	if err != nil {
		return err
	}
	if code != http.StatusNotModified || body != "" {
		return fmt.Errorf("revalidation: got %d with %d body bytes, want bare 304", code, len(body))
	}

	// The scrape must show the daemon's own serving counters.
	code, _, metricsBody, err := get(client, "http://"+metLn.Addr().String()+"/metrics", "")
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("/metrics: got %d", code)
	}
	for _, want := range []string{"ixplight_ixpd_requests_total", "ixplight_ixpd_not_modified_total 1"} {
		if !strings.Contains(metricsBody, want) {
			return fmt.Errorf("/metrics scrape missing %q", want)
		}
	}
	return nil
}

func get(client *http.Client, url, ifNoneMatch string) (code int, etag, body string, err error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, "", "", err
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", "", err
	}
	return resp.StatusCode, resp.Header.Get("ETag"), string(b), nil
}

func selectProfiles(spec string) ([]ixpgen.Profile, error) {
	switch spec {
	case "big4":
		return ixpgen.BigFour(), nil
	case "all":
		return ixpgen.Profiles(), nil
	}
	var out []ixpgen.Profile
	for _, name := range strings.Split(spec, ",") {
		p := ixpgen.ProfileByName(strings.TrimSpace(name))
		if p == nil {
			return nil, fmt.Errorf("unknown IXP %q", name)
		}
		out = append(out, *p)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ixpd:", err)
	os.Exit(1)
}
