// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so benchmark runs can be archived
// and diffed across commits (`make bench` writes BENCH_<yyyymmdd>.json).
//
// Usage:
//
//	go test -bench=. -benchmem -count=1 | benchjson -out BENCH_20211004.json
//	benchjson -in bench.txt -out bench.json
//
// When reading from stdin the benchmark text is echoed to stdout, so
// piping a live -bench run through benchjson still shows progress.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line: its name (Benchmark prefix stripped),
// the package it ran in, the -cpu/GOMAXPROCS suffix, the iteration
// count and every reported metric (ns/op, B/op, allocs/op plus any
// b.ReportMetric extras).
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document. A multi-package run (`go
// test -bench=. ./pkg1 ./pkg2`) emits one pkg: header per package;
// each Result carries its own Pkg, and the top-level Pkg is only set
// when the whole run covered a single package.
type Report struct {
	Date       string   `json:"date"`
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "benchmark text file (default: stdin, echoed to stdout)")
	out := flag.String("out", "", "JSON output file (default: stdout)")
	date := flag.String("date", time.Now().Format("20060102"), "date stamp recorded in the report")
	flag.Parse()

	var r io.Reader = os.Stdin
	echo := *out != "" // echoing JSON into the same stream would garble it
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, echo = f, false
	}

	report, err := parseBench(r, echo)
	if err != nil {
		fatal(err)
	}
	report.Date = *date

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
}

// parseBench reads `go test -bench` output: the goos/goarch/pkg/cpu
// header, then one line per benchmark. Unrecognised lines (PASS, ok,
// test log output) are skipped.
func parseBench(r io.Reader, echo bool) (*Report, error) {
	report := &Report{Benchmarks: []Result{}}
	pkgs := map[string]bool{}
	curPkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if echo {
			fmt.Println(line)
		}
		if v, ok := strings.CutPrefix(line, "goos: "); ok {
			report.Goos = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "goarch: "); ok {
			report.Goarch = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "pkg: "); ok {
			curPkg = v
			pkgs[v] = true
			continue
		}
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			report.CPU = v
			continue
		}
		if res, ok := parseLine(line); ok {
			res.Pkg = curPkg
			report.Benchmarks = append(report.Benchmarks, res)
		}
	}
	if len(pkgs) == 1 {
		report.Pkg = curPkg
	}
	return report, sc.Err()
}

// parseLine parses one benchmark result line of the form
//
//	BenchmarkName/sub=x-8   30   77466453 ns/op   51552 B/op   131 allocs/op
//
// Metric values and units alternate after the iteration count.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	// The trailing -N is GOMAXPROCS, but only on the last path element
	// (sub-benchmark names may contain dashes themselves).
	if i := strings.LastIndex(name, "-"); i > 0 && !strings.Contains(name[i:], "/") {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name, procs = name[:i], n
		}
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Result{}, false
	}
	metrics := make(map[string]float64, (len(fields)-2)/2)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		metrics[fields[i+1]] = v
	}
	if len(metrics) == 0 {
		return Result{}, false
	}
	return Result{Name: name, Procs: procs, Iterations: iters, Metrics: metrics}, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
