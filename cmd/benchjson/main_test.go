package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ixplight
cpu: AMD EPYC 7B13
BenchmarkAblation_ClassifyDirect  	      30	  77466453 ns/op	   51552 B/op	     131 allocs/op
BenchmarkAblation_ClassifyIndexed 	      30	  16638946 ns/op	 1822974 B/op	     125 allocs/op
BenchmarkExpAll/parallel=1-8      	       2	 512345678 ns/op
BenchmarkFigure1_DefinedVsUnknown 	      12	  90210042 ns/op	        92.10 defined_%	  104857 B/op	     421 allocs/op
PASS
ok  	ixplight	12.345s
`

func TestParseBench(t *testing.T) {
	rep, err := parseBench(strings.NewReader(sample), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "ixplight" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(rep.Benchmarks))
	}

	direct := rep.Benchmarks[0]
	if direct.Name != "Ablation_ClassifyDirect" || direct.Iterations != 30 {
		t.Errorf("direct: %+v", direct)
	}
	if direct.Metrics["allocs/op"] != 131 || direct.Metrics["ns/op"] != 77466453 {
		t.Errorf("direct metrics: %v", direct.Metrics)
	}

	sub := rep.Benchmarks[2]
	if sub.Name != "ExpAll/parallel=1" || sub.Procs != 8 {
		t.Errorf("sub-benchmark name/procs: %q procs=%d", sub.Name, sub.Procs)
	}

	custom := rep.Benchmarks[3]
	if custom.Metrics["defined_%"] != 92.10 {
		t.Errorf("custom metric: %v", custom.Metrics)
	}
	if custom.Procs != 1 {
		t.Errorf("no -N suffix should default to 1 proc, got %d", custom.Procs)
	}
	for i, res := range rep.Benchmarks {
		if res.Pkg != "ixplight" {
			t.Errorf("benchmark %d pkg = %q, want ixplight", i, res.Pkg)
		}
	}
}

const multiPkgSample = `goos: linux
goarch: amd64
pkg: ixplight
cpu: AMD EPYC 7B13
BenchmarkTable1_IXPNumbers 	      30	  77466453 ns/op
PASS
ok  	ixplight	2.345s
pkg: ixplight/internal/collector
BenchmarkCollect/sequential-8 	       8	 146283407 ns/op
BenchmarkCollect/parallel=8-8 	      40	  27186751 ns/op
PASS
ok  	ixplight/internal/collector	6.789s
pkg: ixplight/internal/lg
BenchmarkRoutesReceived 	    1200	    868114 ns/op	  184800 B/op	    1671 allocs/op
PASS
ok  	ixplight/internal/lg	1.234s
`

func TestParseBenchMultiPackage(t *testing.T) {
	rep, err := parseBench(strings.NewReader(multiPkgSample), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pkg != "" {
		t.Errorf("top-level pkg = %q, want empty for a multi-package run", rep.Pkg)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(rep.Benchmarks))
	}
	wantPkgs := []string{
		"ixplight",
		"ixplight/internal/collector",
		"ixplight/internal/collector",
		"ixplight/internal/lg",
	}
	for i, res := range rep.Benchmarks {
		if res.Pkg != wantPkgs[i] {
			t.Errorf("benchmark %d (%s) pkg = %q, want %q", i, res.Name, res.Pkg, wantPkgs[i])
		}
	}
	if seq := rep.Benchmarks[1]; seq.Name != "Collect/sequential" || seq.Procs != 8 {
		t.Errorf("collect sequential: %+v", seq)
	}
}

func TestParseLineRejects(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	ixplight	12.345s",
		"--- BENCH: BenchmarkFoo",
		"BenchmarkBroken 	notanint	12 ns/op",
		"BenchmarkNoMetrics 	12",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted, want reject", line)
		}
	}
}
