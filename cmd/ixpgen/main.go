// Command ixpgen materialises the paper's released artifact: a
// twelve-week dataset of daily snapshots for the selected IXPs, plus
// the combined communities dictionary, written as files that
// cmd/analyze -snapshots can consume.
//
// Usage:
//
//	ixpgen [-out ./dataset] [-ixps big4|all|NAME,...] [-days 84]
//	       [-scale 0.02] [-seed 42] [-codec json.gz] [-valleys 9,41]
//	       [-churn 0.03]
//
// By default every day is generated independently (GenerateDay). With
// -churn each IXP's series is instead evolved day over day: day N is
// day N-1 with the given fraction of routes withdrawn, re-tagged or
// flapped plus fresh announcements and weekly member churn — the
// realistic input for -codec delta, which stores day 0 as a full
// binary snapshot and every later day as a .delta file.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/ixpgen"
	"ixplight/internal/telemetry"
)

func main() {
	out := flag.String("out", "./dataset", "output directory")
	ixps := flag.String("ixps", "big4", "comma-separated IXP names, 'big4' or 'all'")
	days := flag.Int("days", 84, "number of daily snapshots (84 = twelve weeks)")
	scale := flag.Float64("scale", 0.02, "workload scale")
	seed := flag.Int64("seed", 42, "generation seed")
	codecName := flag.String("codec", "json.gz", "snapshot codec: json, json.gz, gob, gob.gz, binary, delta")
	valleySpec := flag.String("valleys", "", "comma-separated day offsets with injected collection failures")
	profilePath := flag.String("profile", "", "JSON file with a custom IXP profile (overrides -ixps)")
	churn := flag.Float64("churn", 0,
		"evolve each series day over day with this route-churn fraction instead of regenerating every day (0 = independent days; -codec delta implies 0.03)")
	tracePath := flag.String("trace", "", "write a trace ledger for the run to this file (inspect with tracecat)")
	flag.Parse()

	// With -trace, generation is traced: one ixpgen.run root span with
	// one ixpgen.ixp child per generated series.
	var traceSink *telemetry.JSONLSink
	var traceReg *telemetry.Registry
	traceCtx := context.Background()
	var rootSpan *telemetry.Span
	if *tracePath != "" {
		sink, err := telemetry.NewJSONLSink(*tracePath, 0)
		if err != nil {
			log.Fatal(err)
		}
		traceSink = sink
		traceReg = telemetry.New()
		traceReg.SetSpanSink(sink)
		traceCtx, rootSpan = telemetry.StartSpan(traceCtx, traceReg, "ixpgen.run")
	}

	var profiles []ixpgen.Profile
	var err error
	if *profilePath != "" {
		custom, err := ixpgen.LoadProfile(*profilePath)
		if err != nil {
			log.Fatal(err)
		}
		profiles = []ixpgen.Profile{*custom}
	} else {
		profiles, err = selectProfiles(*ixps)
		if err != nil {
			log.Fatal(err)
		}
	}
	asDelta := *codecName == "delta"
	var codec collector.Codec
	if !asDelta {
		codec, err = parseCodec(*codecName)
		if err != nil {
			log.Fatal(err)
		}
	}
	if asDelta && *churn <= 0 {
		// A delta chain over independently regenerated days would
		// encode nearly every route as churn; evolve instead.
		*churn = 0.03
	}
	valleys, err := parseValleys(*valleySpec)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	files := 0
	for _, p := range profiles {
		_, sp := telemetry.StartSpan(traceCtx, traceReg, "ixpgen.ixp")
		sp.SetAttr("ixp", p.IXP)
		sp.SetAttrInt("days", int64(*days))
		opts := ixpgen.TemporalOptions{
			Seed: *seed, Scale: *scale, Days: *days, ValleyDays: valleys,
		}
		dir := filepath.Join(*out, "snapshots")
		if *churn > 0 {
			n, err := writeEvolvedSeries(dir, p, opts, *churn, asDelta, codec)
			if err != nil {
				log.Fatal(err)
			}
			files += n
			sp.SetAttrInt("files", int64(n))
			sp.End()
			log.Printf("%s: %d evolved daily snapshots (churn %.3f)", p.IXP, *days, *churn)
			continue
		}
		for d := 0; d < *days; d++ {
			w, date, err := ixpgen.GenerateDay(p, opts, d)
			if err != nil {
				log.Fatal(err)
			}
			snap := w.Snapshot(date)
			if _, err := collector.SaveSnapshot(dir, snap, codec); err != nil {
				log.Fatal(err)
			}
			files++
		}
		sp.SetAttrInt("files", int64(*days))
		sp.End()
		log.Printf("%s: %d daily snapshots", p.IXP, *days)
	}

	if err := writeDictionary(*out); err != nil {
		log.Fatal(err)
	}
	if rootSpan != nil {
		rootSpan.SetAttrInt("files", int64(files))
		rootSpan.End()
		if err := traceSink.Close(); err != nil {
			log.Printf("trace ledger: %v", err)
		} else {
			log.Printf("trace ledger → %s", *tracePath)
		}
	}
	log.Printf("dataset complete: %d snapshot files + dictionary.json in %s (%v)",
		files, *out, time.Since(start).Round(time.Millisecond))
}

// writeEvolvedSeries generates one IXP's day-over-day evolved series
// in a single run. With asDelta set, day 0 is saved as a full binary
// snapshot and every later day as one .delta file against the
// previous day; otherwise each day is a standalone file in codec.
func writeEvolvedSeries(dir string, p ixpgen.Profile, opts ixpgen.TemporalOptions, churn float64, asDelta bool, codec collector.Codec) (int, error) {
	files := 0
	var enc *collector.DeltaEncoder
	err := ixpgen.EvolveSeries(p, opts, churn, func(day int, snap *collector.Snapshot) error {
		files++
		if !asDelta {
			_, err := collector.SaveSnapshot(dir, snap, codec)
			return err
		}
		if day == 0 {
			if _, err := collector.SaveSnapshot(dir, snap, collector.CodecBinary); err != nil {
				return err
			}
			var err error
			enc, err = collector.NewDeltaEncoder(snap)
			return err
		}
		buf, err := enc.Encode(snap)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-%s%s", snap.IXP, snap.Date, collector.DeltaExt))
		return collector.AtomicWrite(path, func(w io.Writer) error {
			_, werr := w.Write(buf)
			return werr
		})
	})
	return files, err
}

// writeDictionary dumps the combined per-IXP community dictionary —
// the "dictionary containing more than 3000 communities" the paper
// releases alongside the snapshots.
func writeDictionary(out string) error {
	type entry struct {
		IXP         string `json:"ixp"`
		Community   string `json:"community"`
		Class       string `json:"class"`
		Target      string `json:"target,omitempty"`
		Description string `json:"description"`
	}
	var entries []entry
	for _, s := range dictionary.Profiles() {
		for _, e := range s.Entries() {
			row := entry{
				IXP:         s.IXP,
				Community:   e.Community.String(),
				Class:       e.Action.String(),
				Description: e.Description,
			}
			switch e.Target {
			case dictionary.TargetAll:
				row.Target = "all"
			case dictionary.TargetPeer:
				row.Target = fmt.Sprintf("AS%d", e.TargetASN)
			}
			entries = append(entries, row)
		}
	}
	f, err := os.Create(filepath.Join(out, "dictionary.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		return err
	}
	log.Printf("dictionary.json: %d entries", len(entries))
	return nil
}

func selectProfiles(spec string) ([]ixpgen.Profile, error) {
	switch spec {
	case "big4":
		return ixpgen.BigFour(), nil
	case "all":
		return ixpgen.Profiles(), nil
	}
	var out []ixpgen.Profile
	for _, name := range strings.Split(spec, ",") {
		p := ixpgen.ProfileByName(strings.TrimSpace(name))
		if p == nil {
			return nil, fmt.Errorf("unknown IXP %q", name)
		}
		out = append(out, *p)
	}
	return out, nil
}

func parseCodec(name string) (collector.Codec, error) {
	switch name {
	case "json":
		return collector.CodecJSON, nil
	case "json.gz":
		return collector.CodecJSONGzip, nil
	case "gob":
		return collector.CodecGob, nil
	case "gob.gz":
		return collector.CodecGobGzip, nil
	case "binary", "bin":
		return collector.CodecBinary, nil
	default:
		return 0, fmt.Errorf("unknown codec %q", name)
	}
}

func parseValleys(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad valley day %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}
