// Command ixpgen materialises the paper's released artifact: a
// twelve-week dataset of daily snapshots for the selected IXPs, plus
// the combined communities dictionary, written as files that
// cmd/analyze -snapshots can consume.
//
// Usage:
//
//	ixpgen [-out ./dataset] [-ixps big4|all|NAME,...] [-days 84]
//	       [-scale 0.02] [-seed 42] [-codec json.gz] [-valleys 9,41]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/ixpgen"
)

func main() {
	out := flag.String("out", "./dataset", "output directory")
	ixps := flag.String("ixps", "big4", "comma-separated IXP names, 'big4' or 'all'")
	days := flag.Int("days", 84, "number of daily snapshots (84 = twelve weeks)")
	scale := flag.Float64("scale", 0.02, "workload scale")
	seed := flag.Int64("seed", 42, "generation seed")
	codecName := flag.String("codec", "json.gz", "snapshot codec: json, json.gz, gob, gob.gz, binary")
	valleySpec := flag.String("valleys", "", "comma-separated day offsets with injected collection failures")
	profilePath := flag.String("profile", "", "JSON file with a custom IXP profile (overrides -ixps)")
	flag.Parse()

	var profiles []ixpgen.Profile
	var err error
	if *profilePath != "" {
		custom, err := ixpgen.LoadProfile(*profilePath)
		if err != nil {
			log.Fatal(err)
		}
		profiles = []ixpgen.Profile{*custom}
	} else {
		profiles, err = selectProfiles(*ixps)
		if err != nil {
			log.Fatal(err)
		}
	}
	codec, err := parseCodec(*codecName)
	if err != nil {
		log.Fatal(err)
	}
	valleys, err := parseValleys(*valleySpec)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	files := 0
	for _, p := range profiles {
		opts := ixpgen.TemporalOptions{
			Seed: *seed, Scale: *scale, Days: *days, ValleyDays: valleys,
		}
		dir := filepath.Join(*out, "snapshots")
		for d := 0; d < *days; d++ {
			w, date, err := ixpgen.GenerateDay(p, opts, d)
			if err != nil {
				log.Fatal(err)
			}
			snap := w.Snapshot(date)
			if _, err := collector.SaveSnapshot(dir, snap, codec); err != nil {
				log.Fatal(err)
			}
			files++
		}
		log.Printf("%s: %d daily snapshots", p.IXP, *days)
	}

	if err := writeDictionary(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("dataset complete: %d snapshot files + dictionary.json in %s (%v)",
		files, *out, time.Since(start).Round(time.Millisecond))
}

// writeDictionary dumps the combined per-IXP community dictionary —
// the "dictionary containing more than 3000 communities" the paper
// releases alongside the snapshots.
func writeDictionary(out string) error {
	type entry struct {
		IXP         string `json:"ixp"`
		Community   string `json:"community"`
		Class       string `json:"class"`
		Target      string `json:"target,omitempty"`
		Description string `json:"description"`
	}
	var entries []entry
	for _, s := range dictionary.Profiles() {
		for _, e := range s.Entries() {
			row := entry{
				IXP:         s.IXP,
				Community:   e.Community.String(),
				Class:       e.Action.String(),
				Description: e.Description,
			}
			switch e.Target {
			case dictionary.TargetAll:
				row.Target = "all"
			case dictionary.TargetPeer:
				row.Target = fmt.Sprintf("AS%d", e.TargetASN)
			}
			entries = append(entries, row)
		}
	}
	f, err := os.Create(filepath.Join(out, "dictionary.json"))
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(entries); err != nil {
		return err
	}
	log.Printf("dictionary.json: %d entries", len(entries))
	return nil
}

func selectProfiles(spec string) ([]ixpgen.Profile, error) {
	switch spec {
	case "big4":
		return ixpgen.BigFour(), nil
	case "all":
		return ixpgen.Profiles(), nil
	}
	var out []ixpgen.Profile
	for _, name := range strings.Split(spec, ",") {
		p := ixpgen.ProfileByName(strings.TrimSpace(name))
		if p == nil {
			return nil, fmt.Errorf("unknown IXP %q", name)
		}
		out = append(out, *p)
	}
	return out, nil
}

func parseCodec(name string) (collector.Codec, error) {
	switch name {
	case "json":
		return collector.CodecJSON, nil
	case "json.gz":
		return collector.CodecJSONGzip, nil
	case "gob":
		return collector.CodecGob, nil
	case "gob.gz":
		return collector.CodecGobGzip, nil
	case "binary", "bin":
		return collector.CodecBinary, nil
	default:
		return 0, fmt.Errorf("unknown codec %q", name)
	}
}

func parseValleys(spec string) ([]int, error) {
	if spec == "" {
		return nil, nil
	}
	var out []int
	for _, s := range strings.Split(spec, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, fmt.Errorf("bad valley day %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}
