// Command ixp-lab runs the complete paper pipeline end-to-end, in
// process: generate a calibrated IXP → populate the route server →
// expose the looking glass over HTTP → crawl it with the collector →
// run every analysis on the collected snapshot. The difference between
// "fast path" (direct snapshot) and "full path" (LG crawl) results is
// reported — they must agree.
//
// Usage:
//
//	ixp-lab [-ixp DE-CIX] [-scale 0.02] [-seed 42] [-flaky 0.05]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"ixplight/internal/analysis"
	"ixplight/internal/asdb"
	"ixplight/internal/collector"
	"ixplight/internal/ixpgen"
	"ixplight/internal/lg"
	"ixplight/internal/report"
	"ixplight/internal/rs"
)

func main() {
	ixp := flag.String("ixp", "DE-CIX", "IXP profile to simulate")
	scale := flag.Float64("scale", 0.02, "workload scale")
	seed := flag.Int64("seed", 42, "generation seed")
	flaky := flag.Float64("flaky", 0.05, "injected LG failure rate the collector must survive")
	flag.Parse()

	profile := ixpgen.ProfileByName(*ixp)
	if profile == nil {
		log.Fatalf("unknown IXP %q", *ixp)
	}

	// 1. Generate the calibrated member population and announcements.
	start := time.Now()
	w, err := ixpgen.Generate(*profile, ixpgen.Options{Seed: *seed, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("generated %s: %d members, %d routes (%v)",
		profile.IXP, len(w.Members), len(w.Routes), time.Since(start).Round(time.Millisecond))

	// 2. Run everything through the route server's import pipeline.
	server, err := rs.New(rs.Config{Scheme: profile.Scheme, MaxPathLen: 64, ScrubActions: true})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Populate(server); err != nil {
		log.Fatal(err)
	}

	// 3. Serve the looking glass (with injected flakiness) and crawl it.
	var handler http.Handler = lg.NewServer(server)
	if *flaky > 0 {
		handler = lg.Flaky(handler, lg.FlakyOptions{ErrorRate: *flaky, Seed: *seed})
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	client := lg.NewClient(ts.URL, lg.ClientOptions{MaxRetries: 20, RetryBackoff: 5 * time.Millisecond})
	collected, err := collector.Collect(context.Background(), client, "2021-10-04")
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("collected via LG: %d members, %d routes in %d requests",
		len(collected.Members), len(collected.Routes), client.HTTPRequests())

	// 4. The direct snapshot and the crawled one must agree.
	direct := w.Snapshot("2021-10-04")
	for _, v6 := range []bool{false, true} {
		a, b := analysis.CountSnapshot(direct, v6), analysis.CountSnapshot(collected, v6)
		if a != b {
			log.Fatalf("fast path and LG path disagree (v6=%v): %+v vs %+v", v6, a, b)
		}
	}
	fmt.Println("fast path and LG crawl agree on members, prefixes, routes and communities ✓")

	// 5. Run the full analysis suite on the collected snapshot.
	lab := &report.Lab{
		Profiles:  []ixpgen.Profile{*profile},
		Snapshots: map[string]*collector.Snapshot{profile.IXP: collected},
		Registry:  asdb.Default(),
		Seed:      *seed,
		Scale:     *scale,
	}
	for _, exp := range []string{"table1", "fig1", "fig2", "fig3", "fig4a", "fig4b", "table2", "sec53", "fig5", "fig6", "fig7"} {
		if err := lab.Run(os.Stdout, exp); err != nil {
			log.Fatal(err)
		}
	}
}
