// Command communities is the dictionary tool: it classifies community
// values under an IXP's scheme or dumps the scheme's dictionary.
//
// Usage:
//
//	communities -ixp DE-CIX 0:15169 6695:6695 65535:666
//	communities -ixp LINX -dump
//	communities -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ixplight/internal/asdb"
	"ixplight/internal/bgp"
	"ixplight/internal/dictionary"
)

func main() {
	ixp := flag.String("ixp", "DE-CIX", "IXP scheme to classify under")
	dump := flag.Bool("dump", false, "dump the IXP's full dictionary")
	list := flag.Bool("list", false, "list the known IXPs and their dictionary sizes")
	flag.Parse()

	if *list {
		listIXPs()
		return
	}
	scheme := dictionary.ProfileByName(*ixp)
	if scheme == nil {
		log.Fatalf("unknown IXP %q (try -list)", *ixp)
	}
	if *dump {
		dumpDictionary(scheme)
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: communities [-ixp NAME] <asn:value>... | -dump | -list")
		os.Exit(2)
	}
	classify(scheme, flag.Args())
}

func listIXPs() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "IXP\tRS ASN\tdictionary entries\tprepend\tblackhole")
	for _, s := range dictionary.Profiles() {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%v\n",
			s.IXP, s.RSASN, len(s.Entries()), s.SupportsPrepend, s.SupportsBlackhole)
	}
	tw.Flush()
}

func dumpDictionary(scheme *dictionary.Scheme) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, e := range scheme.Entries() {
		fmt.Fprintf(tw, "%s\t%s\t%s\n", e.Community, e.Action, e.Description)
	}
	tw.Flush()
}

func classify(scheme *dictionary.Scheme, args []string) {
	reg := asdb.Default()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "community\tknown\tclass\ttarget")
	for _, arg := range args {
		c, err := bgp.ParseCommunity(arg)
		if err != nil {
			log.Fatal(err)
		}
		cl := scheme.Classify(c)
		target := ""
		switch cl.Target {
		case dictionary.TargetAll:
			target = "all peers"
		case dictionary.TargetPeer:
			target = reg.Name(cl.TargetASN)
		}
		if cl.Action == dictionary.PrependTo {
			target = fmt.Sprintf("%s (%dx)", target, cl.PrependCount)
		}
		class := "unknown"
		if cl.Known {
			class = cl.Action.String()
		}
		fmt.Fprintf(tw, "%s\t%v\t%s\t%s\n", c, cl.Known, class, target)
	}
	tw.Flush()
}
