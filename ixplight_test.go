package ixplight

// Integration tests over the public facade: the API a downstream user
// sees must carry the whole pipeline.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	scheme := SchemeByName("DE-CIX")
	if scheme == nil {
		t.Fatal("no DE-CIX scheme")
	}
	c, err := ParseCommunity("0:15169")
	if err != nil {
		t.Fatal(err)
	}
	cl := scheme.Classify(c)
	if !cl.Known || cl.Action != DoNotAnnounceTo || cl.TargetASN != 15169 {
		t.Errorf("classification = %+v", cl)
	}
	if dict := BuildDictionary(scheme); dict.Size() != 774 {
		t.Errorf("dictionary size = %d", dict.Size())
	}
}

func TestPublicGenerateAnalyze(t *testing.T) {
	profile := ProfileByName("LINX")
	if profile == nil {
		t.Fatal("no LINX profile")
	}
	w, err := Generate(*profile, GenOptions{Seed: 9, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot("2021-10-04")
	u := ComputeUsage(snap, profile.Scheme, false)
	if u.ASesUsing == 0 || u.RoutesTagged == 0 {
		t.Errorf("usage = %+v", u)
	}
	if share := ActionShare(snap, profile.Scheme, false); share < 0.5 {
		t.Errorf("action share = %f", share)
	}
	nm := ComputeNonMemberTargeting(snap, profile.Scheme, false, 5)
	if nm.Share() <= 0 || len(nm.Top) == 0 {
		t.Errorf("non-member targeting = %+v", nm)
	}
	mix := ComputeMix(snap, profile.Scheme, false)
	if mix.Total() == 0 || mix.DefinedShare() <= 0.5 {
		t.Errorf("mix = %+v", mix)
	}
}

func TestPublicRouteServerFlow(t *testing.T) {
	scheme := SchemeByName("DE-CIX")
	server, err := NewRouteServer(RSConfig{Scheme: scheme, ScrubActions: true})
	if err != nil {
		t.Fatal(err)
	}
	profile := ProfileByName("DE-CIX")
	w, err := Generate(*profile, GenOptions{Seed: 3, Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(server); err != nil {
		t.Fatal(err)
	}
	peers := server.Peers()
	if len(peers) == 0 {
		t.Fatal("no peers")
	}
	if got := server.ExportTo(peers[0].ASN); len(got) == 0 {
		t.Error("no export towards first peer")
	}
}

func TestPublicLabExperiments(t *testing.T) {
	lab, err := NewLab([]Profile{*ProfileByName("AMS-IX")}, 5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	names := Experiments()
	if len(names) < 15 {
		t.Fatalf("experiments = %d", len(names))
	}
	var buf bytes.Buffer
	if err := RunExperiment(lab, &buf, "fig4a"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AMS-IX") {
		t.Errorf("experiment output: %s", buf.String())
	}
}

func TestPublicSanitation(t *testing.T) {
	profile := ProfileByName("AMS-IX")
	opts := TemporalOptions{Seed: 2, Scale: 0.005, Days: 10, ValleyDays: []int{4}}
	var snaps []*Snapshot
	for d := 0; d < opts.Days; d++ {
		w, date, err := GenerateDay(*profile, opts, d)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, w.Snapshot(date))
	}
	kept, removed := CleanSnapshots(snaps)
	if removed != 1 {
		t.Errorf("removed = %d, want 1", removed)
	}
	if len(kept) != 9 {
		t.Errorf("kept = %d", len(kept))
	}
}

func TestPublicMRTRoundTrip(t *testing.T) {
	profile := ProfileByName("AMS-IX")
	w, err := Generate(*profile, GenOptions{Seed: 8, Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot("2021-10-04")
	var buf bytes.Buffer
	if err := WriteMRT(&buf, snap); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMRT(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Routes) != len(snap.Routes) {
		t.Errorf("routes = %d, want %d", len(out.Routes), len(snap.Routes))
	}
}

func TestPublicConfigArtifacts(t *testing.T) {
	scheme := SchemeByName("DE-CIX")
	cfg := RenderRSConfig(scheme)
	if !strings.Contains(cfg, "define rs_asn = 6695;") {
		t.Error("RS config missing ASN")
	}
	page := RenderWebDocs(scheme)
	if !strings.Contains(page, "DE-CIX") || !strings.Contains(page, "<table") {
		t.Error("web docs malformed")
	}
}

func TestPublicCollectAll(t *testing.T) {
	profile := ProfileByName("LINX")
	server, err := NewRouteServer(RSConfig{Scheme: profile.Scheme})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Generate(*profile, GenOptions{Seed: 1, Scale: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(server); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewLGServer(server))
	defer ts.Close()

	results := CollectAll(context.Background(),
		[]CollectTarget{{Name: "LINX", URL: ts.URL}}, "2021-10-04", 1)
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Snapshot.IXP != "LINX" {
		t.Errorf("snapshot IXP = %q", results[0].Snapshot.IXP)
	}
}
