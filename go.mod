module ixplight

go 1.22
