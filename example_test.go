package ixplight_test

// Godoc examples for the public API. Each runs under go test and its
// output is verified, so these double as living documentation.

import (
	"fmt"

	"ixplight"
)

// Classifying community values under an IXP's scheme.
func ExampleScheme_classify() {
	scheme := ixplight.SchemeByName("DE-CIX")
	for _, s := range []string{"0:15169", "6695:6695", "65535:666", "64496:7"} {
		c, _ := ixplight.ParseCommunity(s)
		cl := scheme.Classify(c)
		if !cl.Known {
			fmt.Printf("%s: not defined by %s\n", c, scheme.IXP)
			continue
		}
		fmt.Printf("%s: %v\n", c, cl.Action)
	}
	// Output:
	// 0:15169: do-not-announce-to
	// 6695:6695: announce-only-to
	// 65535:666: blackholing
	// 64496:7: not defined by DE-CIX
}

// Building the §3 dictionary for one IXP.
func ExampleBuildDictionary() {
	scheme := ixplight.SchemeByName("AMS-IX")
	dict := ixplight.BuildDictionary(scheme)
	fmt.Printf("%s defines %d communities\n", dict.IXP(), dict.Size())
	// Output:
	// AMS-IX defines 37 communities
}

// Generating a calibrated workload and running a paper analysis.
func ExampleGenerate() {
	profile := ixplight.ProfileByName("LINX")
	w, err := ixplight.Generate(*profile, ixplight.GenOptions{Seed: 42, Scale: 0.02})
	if err != nil {
		panic(err)
	}
	snap := w.Snapshot("2021-10-04")
	usage := ixplight.ComputeUsage(snap, profile.Scheme, false)
	fmt.Printf("members with ≥1 action community: %d of %d\n",
		usage.ASesUsing, usage.MembersAtRS)
	// Output:
	// members with ≥1 action community: 6 of 16
}

// Steering route propagation with action communities at a route server.
func ExampleRouteServer() {
	scheme := ixplight.SchemeByName("DE-CIX")
	server, err := ixplight.NewRouteServer(ixplight.RSConfig{
		Scheme:       scheme,
		ScrubActions: true,
	})
	if err != nil {
		panic(err)
	}
	profile := ixplight.ProfileByName("DE-CIX")
	w, err := ixplight.Generate(*profile, ixplight.GenOptions{Seed: 42, Scale: 0.005})
	if err != nil {
		panic(err)
	}
	if err := w.Populate(server); err != nil {
		panic(err)
	}
	first := server.Peers()[0]
	exported := server.ExportTo(first.ASN)
	withheld := server.NotExportedTo(first.ASN)
	fmt.Printf("AS%d receives %v routes: %v\n", first.ASN, len(exported) > 0, len(exported)+len(withheld) > len(exported))
	// Output:
	// AS174 receives true routes: true
}
