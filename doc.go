// Package ixplight is a laboratory for studying action BGP communities
// at Internet eXchange Point route servers, reproducing "Light,
// Camera, Actions: characterizing the usage of IXPs' action BGP
// communities" (CoNEXT 2022).
//
// The package re-exports the library's public surface from the
// internal implementation packages:
//
//   - BGP model and wire codec (standard/extended/large communities,
//     UPDATE/OPEN messages, routes) — internal/bgp
//   - per-IXP community dictionaries and classification —
//     internal/dictionary
//   - an RFC 7947 route server executing action communities —
//     internal/rs
//   - an alice-lg-style looking glass server and crawler —
//     internal/lg, internal/collector
//   - a workload generator calibrated to the paper's aggregates —
//     internal/ixpgen
//   - the paper's analyses and report renderers —
//     internal/analysis, internal/report
//
// # Quickstart
//
//	profile := ixplight.ProfileByName("DE-CIX")
//	w, _ := ixplight.Generate(*profile, ixplight.GenOptions{Seed: 1, Scale: 0.05})
//	snap := w.Snapshot("2021-10-04")
//	usage := ixplight.ComputeUsage(snap, profile.Scheme, false)
//	fmt.Printf("%.1f%% of members use action communities\n", 100*usage.ASShare())
//
// See examples/ for runnable programs and DESIGN.md for the system
// inventory and the paper-experiment index.
package ixplight
