package ixplight

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index).
// Each BenchmarkTableN/BenchmarkFigureN target measures the full
// computation of that artifact over a calibrated synthetic workload;
// the printed metrics (b.ReportMetric) carry the headline values so a
// -bench run doubles as a reproduction report. BenchmarkAblation_*
// targets measure the design alternatives DESIGN.md §5 calls out.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one artifact with paper-shaped output instead:
//
//	go run ./cmd/analyze -exp fig5

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	"ixplight/internal/analysis"
	"ixplight/internal/bgp"
	"ixplight/internal/collector"
	"ixplight/internal/dictionary"
	"ixplight/internal/ixpgen"
	"ixplight/internal/mrt"
	"ixplight/internal/report"
	"ixplight/internal/rs"
	"ixplight/internal/rsconfig"
	"ixplight/internal/sanitize"
	"ixplight/internal/webdocs"
)

const (
	benchSeed  = 42
	benchScale = 0.02
)

var (
	benchOnce sync.Once
	benchLab  *report.Lab
)

// lab lazily generates the shared four-IXP workload.
func lab(b *testing.B) *report.Lab {
	b.Helper()
	benchOnce.Do(func() {
		l, err := report.NewLab(ixpgen.BigFour(), benchSeed, benchScale)
		if err != nil {
			panic(err)
		}
		benchLab = l
	})
	return benchLab
}

func benchSnapshot(b *testing.B, ixp string) (*collector.Snapshot, *dictionary.Scheme) {
	l := lab(b)
	return l.Snapshots[ixp], dictionary.ProfileByName(ixp)
}

// BenchmarkTable1_IXPNumbers regenerates Table 1: per-IXP members,
// prefixes and routes for both families.
func BenchmarkTable1_IXPNumbers(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range l.Profiles {
			s := l.Snapshots[p.IXP]
			_ = report.Table1RowFromSnapshot(s, p.Location, p.AvgTraffic, p.TotalMembers)
		}
	}
}

// BenchmarkFigure1_DefinedVsUnknown regenerates Fig. 1 (IXP-defined vs
// unknown community shares) and reports DE-CIX's v4 defined share.
func BenchmarkFigure1_DefinedVsUnknown(b *testing.B) {
	l := lab(b)
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range l.Profiles {
			s := l.Snapshots[p.IXP]
			m4 := analysis.ComputeMix(s, p.Scheme, false)
			_ = analysis.ComputeMix(s, p.Scheme, true)
			if p.IXP == "DE-CIX" {
				last = m4.DefinedShare()
			}
		}
	}
	b.ReportMetric(100*last, "defined_%")
}

// BenchmarkFigure2_TypeMix regenerates Fig. 2 (standard vs extended vs
// large) and reports DE-CIX's v4 standard share.
func BenchmarkFigure2_TypeMix(b *testing.B) {
	l := lab(b)
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range l.Profiles {
			m4 := analysis.ComputeMix(l.Snapshots[p.IXP], p.Scheme, false)
			if p.IXP == "DE-CIX" {
				last = m4.StandardShare()
			}
		}
	}
	b.ReportMetric(100*last, "standard_%")
}

// BenchmarkFigure3_ActionVsInfo regenerates Fig. 3 (action vs
// informational split of the IXP-defined standard communities).
func BenchmarkFigure3_ActionVsInfo(b *testing.B) {
	l := lab(b)
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range l.Profiles {
			s := l.Snapshots[p.IXP]
			last = analysis.ActionShare(s, p.Scheme, false)
			_ = analysis.ActionShare(s, p.Scheme, true)
		}
	}
	b.ReportMetric(100*last, "action_%")
}

// BenchmarkFigure4a_ASesUsingActions regenerates Fig. 4a (ASes and
// routes using action communities).
func BenchmarkFigure4a_ASesUsingActions(b *testing.B) {
	l := lab(b)
	var last analysis.Usage
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range l.Profiles {
			s := l.Snapshots[p.IXP]
			last = analysis.ComputeUsage(s, p.Scheme, false)
			_ = analysis.ComputeUsage(s, p.Scheme, true)
		}
	}
	b.ReportMetric(100*last.ASShare(), "as_share_%")
	b.ReportMetric(100*last.RouteShare(), "route_share_%")
}

// BenchmarkFigure4b_UsageCDF regenerates Fig. 4b (usage concentration)
// and reports the top-5% share at IX.br-SP.
func BenchmarkFigure4b_UsageCDF(b *testing.B) {
	s, scheme := benchSnapshot(b, "IX.br-SP")
	var top float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts := analysis.PerASActionCounts(s, scheme, false)
		u := analysis.ComputeUsage(s, scheme, false)
		cdf := analysis.ConcentrationCDF(counts, u.MembersAtRS)
		top = analysis.TopShare(cdf, 0.05)
	}
	b.ReportMetric(100*top, "top5%_share_%")
}

// BenchmarkFigure4c_Correlation regenerates Fig. 4c (per-AS route vs
// community share scatter) across the four IXPs.
func BenchmarkFigure4c_Correlation(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range l.Profiles {
			_ = analysis.RouteCommCorrelation(l.Snapshots[p.IXP], p.Scheme, false)
		}
	}
}

// BenchmarkTable2_ASesPerActionType regenerates Table 2 (number and
// fraction of ASes using each action type, both families).
func BenchmarkTable2_ASesPerActionType(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range l.Profiles {
			s := l.Snapshots[p.IXP]
			_ = analysis.ASesPerActionType(s, p.Scheme, false)
			_ = analysis.ASesPerActionType(s, p.Scheme, true)
		}
	}
}

// BenchmarkSec53_OccurrencesPerType regenerates the §5.3 occurrence
// counts per action type and reports DE-CIX's do-not-announce share.
func BenchmarkSec53_OccurrencesPerType(b *testing.B) {
	s, scheme := benchSnapshot(b, "DE-CIX")
	var dnaShare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		occ := analysis.OccurrencesPerType(s, scheme, false)
		total := 0
		for _, n := range occ {
			total += n
		}
		if total > 0 {
			dnaShare = float64(occ[dictionary.DoNotAnnounceTo]) / float64(total)
		}
	}
	b.ReportMetric(100*dnaShare, "dna_share_%")
}

// BenchmarkFigure5_TopCommunities regenerates Fig. 5 (top-20 action
// communities per IXP).
func BenchmarkFigure5_TopCommunities(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range l.Profiles {
			_ = analysis.TopActionCommunities(l.Snapshots[p.IXP], p.Scheme, false, 20)
		}
	}
}

// BenchmarkFigure6_NonMemberTargets regenerates Fig. 6 / §5.5 (action
// communities targeting ASes absent from the RS) and reports the
// LINX v4 share.
func BenchmarkFigure6_NonMemberTargets(b *testing.B) {
	l := lab(b)
	var linxShare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range l.Profiles {
			nm := analysis.ComputeNonMemberTargeting(l.Snapshots[p.IXP], p.Scheme, false, 20)
			if p.IXP == "LINX" {
				linxShare = nm.Share()
			}
		}
	}
	b.ReportMetric(100*linxShare, "linx_nonmember_%")
}

// BenchmarkFigure7_Culprits regenerates Fig. 7 (top-10 ASes tagging
// non-RS members) and reports Hurricane Electric's share at DE-CIX.
func BenchmarkFigure7_Culprits(b *testing.B) {
	s, scheme := benchSnapshot(b, "DE-CIX")
	var heShare float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		culprits := analysis.CulpritRanking(s, scheme, false, 10)
		nm := analysis.ComputeNonMemberTargeting(s, scheme, false, 0)
		for _, c := range culprits {
			if c.ASN == 6939 && nm.Instances > 0 {
				heShare = float64(c.Count) / float64(nm.Instances)
			}
		}
	}
	b.ReportMetric(100*heShare, "he_share_%")
}

// benchSeries generates a daily snapshot series for the stability
// benches (small scale: the tables need counts, not volume).
func benchSeries(b *testing.B, days int, valleys []int) []*collector.Snapshot {
	b.Helper()
	p := ixpgen.ProfileByName("AMS-IX")
	opts := ixpgen.TemporalOptions{Seed: benchSeed, Scale: 0.01, Days: days, ValleyDays: valleys}
	var snaps []*collector.Snapshot
	for d := 0; d < days; d++ {
		w, date, err := ixpgen.GenerateDay(*p, opts, d)
		if err != nil {
			b.Fatal(err)
		}
		snaps = append(snaps, w.Snapshot(date))
	}
	return snaps
}

// BenchmarkTable3_WeeklyStability regenerates Table 3 (variation over
// seven daily snapshots) and reports the max diff percentage.
func BenchmarkTable3_WeeklyStability(b *testing.B) {
	snaps := benchSeries(b, 7, nil)
	var maxDiff float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t4 := analysis.Stability(snaps, false)
		_ = analysis.Stability(snaps, true)
		maxDiff = t4.MaxDiffPct()
	}
	b.ReportMetric(maxDiff, "max_diff_%")
}

// BenchmarkTable4_ThreeMonthStability regenerates Table 4 (variation
// over twelve weekly snapshots).
func BenchmarkTable4_ThreeMonthStability(b *testing.B) {
	snaps := analysis.WeeklyRepresentatives(benchSeries(b, 84, nil))
	var maxDiff float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t4 := analysis.Stability(snaps, false)
		maxDiff = t4.MaxDiffPct()
	}
	b.ReportMetric(maxDiff, "max_diff_%")
}

// BenchmarkSanitation_ValleyDetection measures the §3 valley detector
// over a three-week series with two injected collection failures.
func BenchmarkSanitation_ValleyDetection(b *testing.B) {
	snaps := benchSeries(b, 21, []int{5, 13})
	var removed int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, removed = sanitize.Clean(snaps, sanitize.Options{})
	}
	b.ReportMetric(float64(removed), "removed")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblation_DictionaryLookupMap vs ...Binary compare the two
// dictionary index representations.
func BenchmarkAblation_DictionaryLookupMap(b *testing.B) {
	d := dictionary.Build(dictionary.ProfileByName("DE-CIX"))
	entries := d.Entries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := entries[i%len(entries)].Community
		if _, ok := d.Lookup(c); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkAblation_DictionaryLookupBinary is the sorted-slice twin.
func BenchmarkAblation_DictionaryLookupBinary(b *testing.B) {
	d := dictionary.Build(dictionary.ProfileByName("DE-CIX"))
	entries := d.Entries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := entries[i%len(entries)].Community
		if _, ok := d.LookupBinary(c); !ok {
			b.Fatal("miss")
		}
	}
}

// ablationServer builds a populated route server for the export
// ablation.
func ablationServer(b *testing.B) (*rs.Server, []rs.Peer) {
	b.Helper()
	p := ixpgen.ProfileByName("LINX")
	server, err := rs.New(rs.Config{Scheme: p.Scheme, ScrubActions: true})
	if err != nil {
		b.Fatal(err)
	}
	w, err := ixpgen.Generate(*p, ixpgen.Options{Seed: benchSeed, Scale: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Populate(server); err != nil {
		b.Fatal(err)
	}
	return server, server.Peers()
}

// BenchmarkAblation_ExportPrecomputed measures per-peer export with
// the import-time action summaries.
func BenchmarkAblation_ExportPrecomputed(b *testing.B) {
	server, peers := ablationServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = server.ExportTo(peers[i%len(peers)].ASN)
	}
}

// BenchmarkAblation_ExportScan re-classifies every community on every
// export decision instead.
func BenchmarkAblation_ExportScan(b *testing.B) {
	server, peers := ablationServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = server.ExportToScan(peers[i%len(peers)].ASN)
	}
}

// BenchmarkAblation_SnapshotCodec compares the five snapshot
// serialisations (write + read back) on the same snapshot.
func BenchmarkAblation_SnapshotCodec(b *testing.B) {
	s, _ := benchSnapshot(b, "AMS-IX")
	for _, codec := range collector.Codecs() {
		b.Run(codec.String(), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := collector.WriteSnapshot(&buf, s, codec); err != nil {
					b.Fatal(err)
				}
				size = buf.Len()
				if _, err := collector.ReadSnapshot(&buf, codec); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(size), "bytes")
			if n := len(s.Routes); n > 0 {
				b.ReportMetric(float64(size)/float64(n), "bytes_per_route")
			}
		})
	}
}

// BenchmarkAblation_CommunitySetSlice vs ...Map compare membership
// testing on realistic (short) per-route community lists.
func BenchmarkAblation_CommunitySetSlice(b *testing.B) {
	s, _ := benchSnapshot(b, "DE-CIX")
	routes := s.Routes
	needle := bgp.BlackholeWellKnown
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := routes[i%len(routes)]
		_ = bgp.HasCommunity(r.Communities, needle)
	}
}

// BenchmarkAblation_CommunitySetMap builds a map per route, the
// alternative HasCommunity avoids.
func BenchmarkAblation_CommunitySetMap(b *testing.B) {
	s, _ := benchSnapshot(b, "DE-CIX")
	routes := s.Routes
	needle := bgp.BlackholeWellKnown
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := routes[i%len(routes)]
		set := make(map[bgp.Community]bool, len(r.Communities))
		for _, c := range r.Communities {
			set[c] = true
		}
		_ = set[needle]
	}
}

// BenchmarkWireMarshalUpdate measures the BGP codec on a realistic
// heavily-tagged update.
func BenchmarkWireMarshalUpdate(b *testing.B) {
	s, _ := benchSnapshot(b, "DE-CIX")
	// Use the most-tagged route as the payload.
	var heavy bgp.Route
	for _, r := range s.Routes {
		if r.CommunityCount() > heavy.CommunityCount() && !r.IsIPv6() {
			heavy = r
		}
	}
	u := bgp.NewUpdateFromRoute(heavy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := bgp.Marshal(u)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bgp.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndExperimentSuite runs the complete cmd/analyze
// experiment battery once per iteration (output discarded).
func BenchmarkEndToEndExperimentSuite(b *testing.B) {
	l := lab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"table1", "fig1", "fig2", "fig3", "fig4a", "fig4b", "fig4c", "table2", "sec53", "fig5", "fig6", "fig7"} {
			if err := l.Run(io.Discard, name); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExtension_FlavourActions regenerates the extension
// analysis: action instances per community flavour.
func BenchmarkExtension_FlavourActions(b *testing.B) {
	l := lab(b)
	var wide int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range l.Profiles {
			f := analysis.ComputeFlavourActions(l.Snapshots[p.IXP], p.Scheme, false)
			if p.IXP == "DE-CIX" {
				wide = f.LargeWideTargets
			}
		}
	}
	b.ReportMetric(float64(wide), "wide_targets")
}

// BenchmarkSec56_HygieneFilter regenerates the §5.6 what-if: the
// impact of a too-many-communities import filter.
func BenchmarkSec56_HygieneFilter(b *testing.B) {
	s, _ := benchSnapshot(b, "DE-CIX")
	var drop float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		impacts := analysis.HygieneFilterImpact(s, false, []int{10, 20, 40, 80})
		drop = impacts[1].DropShare()
	}
	b.ReportMetric(100*drop, "dropped_at_20_%")
}

// BenchmarkMethodology_VisibilityGap measures the LG-vs-collector
// visibility comparison that motivates the paper's vantage point.
func BenchmarkMethodology_VisibilityGap(b *testing.B) {
	l := lab(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := l.Run(&buf, "visibility"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec54_TargetIntersection regenerates the §5.4 cross-IXP
// target overlap analysis.
func BenchmarkSec54_TargetIntersection(b *testing.B) {
	l := lab(b)
	var ixps []analysis.IXPSnapshot
	for _, p := range l.Profiles {
		ixps = append(ixps, analysis.IXPSnapshot{Snapshot: l.Snapshots[p.IXP], Scheme: p.Scheme})
	}
	var common int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, c := analysis.TargetIntersections(ixps, false, 20)
		common = len(c)
	}
	b.ReportMetric(float64(common), "common_targets")
}

// BenchmarkSec54_CategoryBreakdown regenerates the target-category
// aggregation.
func BenchmarkSec54_CategoryBreakdown(b *testing.B) {
	l := lab(b)
	s, scheme := benchSnapshot(b, "DE-CIX")
	var content float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br := analysis.ComputeCategoryBreakdown(s, scheme, l.Registry, false)
		content = analysis.ContentShare(br.NonMembers)
	}
	b.ReportMetric(100*content, "content_share_%")
}

// BenchmarkMRTWriteRead measures dumping and re-parsing a snapshot as
// a RouteViews-style archive.
func BenchmarkMRTWriteRead(b *testing.B) {
	s, _ := benchSnapshot(b, "AMS-IX")
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := mrt.WriteRIB(&buf, s); err != nil {
			b.Fatal(err)
		}
		size = buf.Len()
		if _, err := mrt.ReadRIB(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(size), "bytes")
}

// BenchmarkDictionaryFromArtifacts measures the full §3 dictionary
// construction from the two textual artifacts.
func BenchmarkDictionaryFromArtifacts(b *testing.B) {
	scheme := dictionary.ProfileByName("DE-CIX")
	cfgText := rsconfig.Render(scheme, rsconfig.Options{})
	page := webdocs.Render(scheme)
	var size int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		defs, err := rsconfig.Parse(cfgText)
		if err != nil {
			b.Fatal(err)
		}
		docs, err := webdocs.Parse(page)
		if err != nil {
			b.Fatal(err)
		}
		union := dictionary.UnionEntries(
			rsconfig.Entries(scheme.IXP, defs),
			webdocs.Entries(scheme, docs),
		)
		size = dictionary.FromEntries(scheme.IXP, union).Size()
	}
	b.ReportMetric(float64(size), "entries")
}

// --- Classified snapshot index ---

// directAnalysisBattery runs the single-snapshot §5 battery on the
// direct-classify twins: every entry point re-walks the snapshot and
// re-classifies each community instance.
func directAnalysisBattery(s *collector.Snapshot, scheme *dictionary.Scheme) int {
	sink := 0
	for _, v6 := range []bool{false, true} {
		u := analysis.ComputeUsageDirect(s, scheme, v6)
		sink += u.ActionInstances
		sink += analysis.ComputeMixDirect(s, scheme, v6).Total()
		a, i := analysis.ActionInfoSplitDirect(s, scheme, v6)
		sink += a + i
		sink += analysis.ComputeFlavourActionsDirect(s, scheme, v6).TotalAction()
		sink += len(analysis.PerASActionCountsDirect(s, scheme, v6))
		sink += len(analysis.RouteCommCorrelationDirect(s, scheme, v6))
		sink += len(analysis.ASesPerActionTypeDirect(s, scheme, v6))
		sink += len(analysis.OccurrencesPerTypeDirect(s, scheme, v6))
		sink += len(analysis.TopActionCommunitiesDirect(s, scheme, v6, 20))
		sink += analysis.ComputeNonMemberTargetingDirect(s, scheme, v6, 20).Instances
		sink += len(analysis.CulpritRankingDirect(s, scheme, v6, 10))
		sink += len(analysis.TopTargetsDirect(s, scheme, v6, 10))
	}
	return sink
}

// indexedAnalysisBattery is the same battery served by one classified
// snapshot index.
func indexedAnalysisBattery(ix *analysis.Index) int {
	sink := 0
	for _, v6 := range []bool{false, true} {
		sink += ix.Usage(v6).ActionInstances
		sink += ix.Mix(v6).Total()
		a, i := ix.ActionInfoSplit(v6)
		sink += a + i
		sink += ix.FlavourActions(v6).TotalAction()
		sink += len(ix.PerASActionCounts(v6))
		sink += len(ix.RouteCommCorrelation(v6))
		sink += len(ix.ASesPerActionType(v6))
		sink += len(ix.OccurrencesPerType(v6))
		sink += len(ix.TopActionCommunities(v6, 20))
		sink += ix.NonMemberTargeting(v6, 20).Instances
		sink += len(ix.CulpritRanking(v6, 10))
		sink += len(ix.TopTargets(v6, 10))
	}
	return sink
}

// BenchmarkAblation_ClassifyDirect vs ...ClassifyIndexed compare the
// two execution paths behind the analysis wrappers over the same
// DE-CIX snapshot: per-analysis re-classification against one
// memoized classification pass plus accessor reads. Both run
// single-threaded so ns/op and allocs/op compare like for like.
func BenchmarkAblation_ClassifyDirect(b *testing.B) {
	s, scheme := benchSnapshot(b, "DE-CIX")
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += directAnalysisBattery(s, scheme)
	}
	if sink == 0 {
		b.Fatal("empty battery")
	}
}

// BenchmarkAblation_ClassifyIndexed builds a fresh index every
// iteration — the cost shown includes the full classification pass,
// not just cache reads.
func BenchmarkAblation_ClassifyIndexed(b *testing.B) {
	s, scheme := benchSnapshot(b, "DE-CIX")
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		ix := analysis.NewIndexWorkers(s, scheme, 1)
		sink += indexedAnalysisBattery(ix)
	}
	if sink == 0 {
		b.Fatal("empty battery")
	}
}

// BenchmarkExpAll is the wall-clock target for the full `-exp all`
// battery: the complete experiment list over the big-four lab, as
// cmd/analyze runs it. The parallel=1 sub-benchmark is the legacy
// sequential direct-classify engine; the parallel=N one (N =
// GOMAXPROCS) is the indexed engine with experiment fan-out. Their
// ratio is the host's end-to-end speedup.
func BenchmarkExpAll(b *testing.B) {
	const expAllScale = 0.004 // keeps one iteration (incl. table4's 84-day series) affordable
	workerCounts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workerCounts = append(workerCounts, n)
	}
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			old := analysis.Parallelism()
			analysis.SetParallelism(workers)
			defer analysis.SetParallelism(old)
			l, err := report.NewLabParallel(ixpgen.BigFour(), benchSeed, expAllScale, workers)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				outs, err := l.RunMany(report.ExperimentNames)
				if err != nil {
					b.Fatal(err)
				}
				total := 0
				for _, out := range outs {
					total += len(out)
				}
				if total == 0 {
					b.Fatal("empty output")
				}
			}
		})
	}
}
